#include "obs/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

namespace mwsim::obs {
namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt("%.9g", v);
}

/// Microsecond timestamp for Chrome-trace events, 3 decimals (ns precision).
std::string traceTs(sim::SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1000.0);
  return buf;
}

void appendCounterEvent(std::string& out, const std::string& name, sim::SimTime t,
                        double value) {
  if (!out.empty()) out += ",\n";
  out += "{\"name\":\"" + jsonEscape(name) +
         "\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" + traceTs(t) +
         ",\"args\":{\"value\":" + jsonNumber(value) + "}}";
}

/// The root "interaction" tier holds client-side time (think time, network
/// round trips); the bottleneck question is about the server tiers.
bool serverTier(const std::string& name) { return name != "interaction"; }

}  // namespace

std::string Verdict::oneLine() const {
  std::string s = "bottleneck=" + resource + " kind=" + resourceKindName(kind) +
                  " util=" + fmt("%.0f", utilization * 100.0) + "%" +
                  " plateau=" + fmt("%.0f", plateauFraction * 100.0) + "%";
  if (!saturated) s += " (unsaturated)";
  if (!dominant.empty()) s += " dominant=" + dominant;
  if (!note.empty()) s += " note=\"" + note + "\"";
  return s;
}

std::vector<LittleRecord> littleRecords(const MetricsReport& report,
                                        sim::SimTime from, sim::SimTime to) {
  std::vector<LittleRecord> out;
  const std::size_t a = report.snapshotAtOrBefore(from);
  const std::size_t b = report.snapshotAtOrBefore(to);
  if (b <= a) return out;
  const double dt = sim::toSeconds(report.times[b] - report.times[a]);
  if (dt <= 0.0) return out;
  for (const auto& s : report.little) {
    if (s.completed.size() <= b) continue;
    const std::uint64_t completed = s.completed[b] - s.completed[a];
    if (completed == 0) continue;
    LittleRecord r;
    r.name = s.name;
    r.L = (s.jobIntegral[b] - s.jobIntegral[a]) / dt;
    r.lambda = static_cast<double>(completed) / dt;
    r.W = (s.sojourn[b] - s.sojourn[a]) / static_cast<double>(completed);
    r.relError = std::fabs(r.L - r.lambda * r.W) / std::max(r.L, 1e-9);
    out.push_back(std::move(r));
  }
  return out;
}

Verdict analyze(const MetricsReport& report, const trace::Report* traces,
                sim::SimTime from, sim::SimTime to, AnalyzerOptions options) {
  Verdict v;

  // Saturated resource: highest windowed mean utilization among the kinds
  // that can actually be the wall (CPU, NIC, lock, write stream) — but
  // physical resources (CPU/NIC/stream) outrank locks. A lock's busy time
  // counts its holder's time blocked on resources *inside* the critical
  // section, so a near-100% lock above a saturated CPU is a symptom of that
  // CPU, while a near-100% lock with every physical resource cool is the
  // genuine wall (the paper's LOCK TABLES signature: DB CPU well below
  // saturation while throughput stops scaling). This mirrors the paper's
  // own method — find the pegged hardware resource first.
  const MetricsReport::UtilSeries* bestPhysical = nullptr;
  double bestPhysicalUtil = -1.0;
  const MetricsReport::UtilSeries* bestLock = nullptr;
  double bestLockUtil = -1.0;
  for (const auto& s : report.utilization) {
    if (!verdictCandidate(s.kind)) continue;
    const double u = report.meanUtilization(s, from, to);
    if (s.kind == ResourceKind::Lock) {
      if (u > bestLockUtil) {
        bestLockUtil = u;
        bestLock = &s;
      }
    } else if (u > bestPhysicalUtil) {
      bestPhysicalUtil = u;
      bestPhysical = &s;
    }
  }
  const MetricsReport::UtilSeries* best = bestPhysical;
  double bestUtil = bestPhysicalUtil;
  if (bestLock != nullptr && bestLockUtil >= options.saturation &&
      bestPhysicalUtil < options.saturation) {
    best = bestLock;
    bestUtil = bestLockUtil;
  }
  if (best == nullptr && bestLock != nullptr) {
    best = bestLock;
    bestUtil = bestLockUtil;
  }
  if (best != nullptr) {
    v.resource = best->name;
    v.kind = best->kind;
    v.utilization = bestUtil;
    v.plateauFraction = report.fractionAbove(*best, options.saturation, from, to);
    v.saturated = bestUtil >= options.saturation;
  }

  // Dominant critical-path component from trace attribution: the server
  // tier with the most exclusive time, tagged with its top category.
  if (traces != nullptr && traces->traces > 0) {
    sim::Duration total = 0;
    const trace::TierStats* top = nullptr;
    sim::Duration topExcl = 0;
    for (const auto& tier : traces->tiers) {
      if (!serverTier(tier.name)) continue;
      sim::Duration excl = 0;
      for (sim::Duration d : tier.exclNs) excl += d;
      total += excl;
      if (excl > topExcl) {
        topExcl = excl;
        top = &tier;
      }
    }
    if (top != nullptr && total > 0) {
      std::size_t topCat = 0;
      for (std::size_t c = 1; c < trace::kCategoryCount; ++c) {
        if (top->exclNs[c] > top->exclNs[topCat]) topCat = c;
      }
      v.dominant = top->name + std::string("/") +
                   trace::categoryName(static_cast<trace::Category>(topCat)) + " " +
                   fmt("%.0f", 100.0 * static_cast<double>(topExcl) /
                                   static_cast<double>(total)) +
                   "%";
    }
  }

  // Shed-explains-plateau: when open-loop admission control turned away a
  // meaningful share of arrivals, the throughput plateau is (partly) the
  // shed policy, not just the saturated resource.
  const std::uint64_t arrivals = report.counterDelta("wl.arrivals", from, to);
  const std::uint64_t shed = report.counterDelta("wl.shed", from, to);
  if (arrivals > 0 && static_cast<double>(shed) >=
                          options.shedNoteFraction * static_cast<double>(arrivals)) {
    v.note = "admission shed " +
             fmt("%.0f", 100.0 * static_cast<double>(shed) /
                             static_cast<double>(arrivals)) +
             "% of open-loop arrivals";
  }

  v.little = littleRecords(report, from, to);
  return v;
}

std::string metricsJson(const MetricsReport& report) {
  std::string out = "{\n";
  out += "  \"period_sec\": " + jsonNumber(sim::toSeconds(report.period)) + ",\n";
  out += "  \"window_start_sec\": " + jsonNumber(sim::toSeconds(report.windowStart)) + ",\n";
  out += "  \"window_end_sec\": " + jsonNumber(sim::toSeconds(report.windowEnd)) + ",\n";

  out += "  \"times_sec\": [";
  for (std::size_t i = 0; i < report.times.size(); ++i) {
    if (i != 0) out += ", ";
    out += jsonNumber(sim::toSeconds(report.times[i]));
  }
  out += "],\n";

  // Utilization series are exported per interval (differentiated), which is
  // what anyone plotting them wants; the cumulative integrals stay internal.
  out += "  \"utilization\": [\n";
  for (std::size_t si = 0; si < report.utilization.size(); ++si) {
    const auto& s = report.utilization[si];
    out += "    {\"name\": \"" + jsonEscape(s.name) + "\", \"kind\": \"" +
           resourceKindName(s.kind) + "\", \"capacity\": " + jsonNumber(s.capacity) +
           ", \"series\": [";
    for (std::size_t i = 1; i < s.cumulative.size(); ++i) {
      const double dt = sim::toSeconds(report.times[i] - report.times[i - 1]);
      if (i != 1) out += ", ";
      out += jsonNumber(dt <= 0.0 ? 0.0
                                  : (s.cumulative[i] - s.cumulative[i - 1]) /
                                        (dt * s.capacity));
    }
    out += "]}";
    out += si + 1 < report.utilization.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"gauges\": [\n";
  for (std::size_t si = 0; si < report.gauges.size(); ++si) {
    const auto& s = report.gauges[si];
    out += "    {\"name\": \"" + jsonEscape(s.name) + "\", \"series\": [";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (i != 0) out += ", ";
      out += jsonNumber(s.values[i]);
    }
    out += "]}";
    out += si + 1 < report.gauges.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"counters\": [\n";
  for (std::size_t si = 0; si < report.counters.size(); ++si) {
    const auto& s = report.counters[si];
    out += "    {\"name\": \"" + jsonEscape(s.name) + "\", \"cumulative\": [";
    for (std::size_t i = 0; i < s.cumulative.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(s.cumulative[i]);
    }
    out += "]}";
    out += si + 1 < report.counters.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"little\": [\n";
  for (std::size_t i = 0; i < report.verdict.little.size(); ++i) {
    const LittleRecord& r = report.verdict.little[i];
    out += "    {\"name\": \"" + jsonEscape(r.name) +
           "\", \"L\": " + jsonNumber(r.L) + ", \"lambda\": " + jsonNumber(r.lambda) +
           ", \"W\": " + jsonNumber(r.W) +
           ", \"rel_error\": " + jsonNumber(r.relError) + "}";
    out += i + 1 < report.verdict.little.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"histograms\": [\n";
  for (std::size_t i = 0; i < report.histograms.size(); ++i) {
    const auto& h = report.histograms[i];
    out += "    {\"name\": \"" + jsonEscape(h.name) +
           "\", \"count\": " + std::to_string(h.count) +
           ", \"mean\": " + jsonNumber(h.mean) + ", \"p50\": " + jsonNumber(h.p50) +
           ", \"p90\": " + jsonNumber(h.p90) + ", \"p99\": " + jsonNumber(h.p99) +
           ", \"min\": " + jsonNumber(h.min) + ", \"max\": " + jsonNumber(h.max) + "}";
    out += i + 1 < report.histograms.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  const Verdict& v = report.verdict;
  out += "  \"verdict\": {\n";
  out += "    \"resource\": \"" + jsonEscape(v.resource) + "\",\n";
  out += "    \"kind\": \"" + std::string(resourceKindName(v.kind)) + "\",\n";
  out += "    \"utilization\": " + jsonNumber(v.utilization) + ",\n";
  out += "    \"plateau_fraction\": " + jsonNumber(v.plateauFraction) + ",\n";
  out += "    \"saturated\": " + std::string(v.saturated ? "true" : "false") + ",\n";
  out += "    \"dominant\": \"" + jsonEscape(v.dominant) + "\",\n";
  out += "    \"note\": \"" + jsonEscape(v.note) + "\",\n";
  out += "    \"one_line\": \"" + jsonEscape(v.oneLine()) + "\"\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

std::string counterTrackEvents(const MetricsReport& report) {
  std::string out;
  // Utilization tracks: the interval value holds from the interval's start,
  // with a closing event at the last snapshot so the track spans the run.
  for (const auto& s : report.utilization) {
    double last = 0.0;
    for (std::size_t i = 1; i < s.cumulative.size(); ++i) {
      const double dt = sim::toSeconds(report.times[i] - report.times[i - 1]);
      last = dt <= 0.0 ? 0.0
                       : (s.cumulative[i] - s.cumulative[i - 1]) / (dt * s.capacity);
      appendCounterEvent(out, "util:" + s.name, report.times[i - 1], last);
    }
    if (s.cumulative.size() > 1) {
      appendCounterEvent(out, "util:" + s.name, report.times.back(), last);
    }
  }
  for (const auto& s : report.gauges) {
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      appendCounterEvent(out, "gauge:" + s.name, report.times[i], s.values[i]);
    }
  }
  // Counters export as per-second rates; all-zero tracks are skipped to
  // keep idle instruments from cluttering the Perfetto UI.
  for (const auto& s : report.counters) {
    if (s.cumulative.empty() || s.cumulative.back() == 0) continue;
    double last = 0.0;
    for (std::size_t i = 1; i < s.cumulative.size(); ++i) {
      const double dt = sim::toSeconds(report.times[i] - report.times[i - 1]);
      last = dt <= 0.0 ? 0.0
                       : static_cast<double>(s.cumulative[i] - s.cumulative[i - 1]) / dt;
      appendCounterEvent(out, "rate:" + s.name, report.times[i - 1], last);
    }
    if (s.cumulative.size() > 1) {
      appendCounterEvent(out, "rate:" + s.name, report.times.back(), last);
    }
  }
  return out;
}

}  // namespace mwsim::obs
