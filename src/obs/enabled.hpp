#pragma once

/// Compile-time kill switch for the metrics layer, mirroring
/// trace/span.hpp. Building with -DMWSIM_METRICS=OFF (which defines
/// MWSIM_METRICS_OFF) compiles every instrumentation hook — counter bumps
/// in the middleware, queue/sojourn accumulators in the kernel — down to
/// nothing; CI benchmarks that build against the default one to bound the
/// cost of the compiled-in-but-unsampled hooks. This header is
/// deliberately dependency-free so the simulation kernel can include it
/// without linking the obs library.

namespace mwsim::obs {

#ifdef MWSIM_METRICS_OFF
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

}  // namespace mwsim::obs
