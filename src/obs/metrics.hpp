#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/enabled.hpp"
#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace mwsim::obs {

/// Run-level metrics knobs, carried in ExperimentParams. Like tracing, the
/// metrics layer is observation-only: enabling it never changes simulated
/// results — every instrument reads state the scheduler already decided,
/// and the pump samples *between* kernel steps (see MetricsPump).
struct Options {
  bool enabled = false;
  /// Sampling period for the metrics pump (paper §4.5 samples every
  /// second with sysstat; so do we).
  sim::Duration period = sim::kSecond;
};

/// Monotonic event counter (cache hits, reroutes, shed sessions...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed distribution instrument, reusing stats::Histogram.
class HistogramInstrument {
 public:
  void record(double value) { hist_.record(value); }
  const stats::Histogram& histogram() const noexcept { return hist_; }

 private:
  stats::Histogram hist_;
};

/// What kind of saturable resource a utilization series measures. The
/// bottleneck analyzer only considers kinds that can be "the wall": CPUs,
/// NIC links, locks, and the cluster write stream. Pool occupancy and
/// plain rates are exported for plots but excluded from verdicts — a full
/// process pool means requests are *inside* the server, not that the pool
/// itself is the binding resource.
enum class ResourceKind { Cpu, Nic, Lock, Stream, Pool, Rate };

inline const char* resourceKindName(ResourceKind k) {
  switch (k) {
    case ResourceKind::Cpu: return "cpu";
    case ResourceKind::Nic: return "nic";
    case ResourceKind::Lock: return "lock";
    case ResourceKind::Stream: return "stream";
    case ResourceKind::Pool: return "pool";
    case ResourceKind::Rate: return "rate";
  }
  return "?";
}

inline bool verdictCandidate(ResourceKind k) {
  return k == ResourceKind::Cpu || k == ResourceKind::Nic ||
         k == ResourceKind::Lock || k == ResourceKind::Stream;
}

/// Per-simulation instrument registry.
///
/// One registry belongs to one run (mirroring trace::Collector), reachable
/// from middleware through sim::Simulation::metrics(); every hook site is
/// guarded by `if constexpr (obs::kEnabled)` plus a null check, so the
/// layer costs one branch when disabled and nothing at all when compiled
/// out. The hot middleware counters are plain members — no name lookup on
/// the request path; named instruments and pull probes exist for wiring
/// code and tests.
///
/// Register everything before the pump takes its first sample: the pump
/// snapshots the full instrument list each tick, so late registration
/// would misalign the series.
class MetricsRegistry {
 public:
  // --- Well-known middleware counters (zero-lookup hook sites) -----------
  Counter stmtCacheHit;    // db.stmt_cache.hit
  Counter stmtCacheMiss;   // db.stmt_cache.miss
  Counter planCacheHit;    // db.plan_cache.hit
  Counter planCacheMiss;   // db.plan_cache.miss
  Counter lbHealthFlips;   // lb.health_flips
  Counter lbReroutes;      // lb.reroutes
  Counter lbTimeouts;      // lb.timeouts
  Counter lbErrors;        // lb.errors
  Counter openArrivals;    // wl.arrivals
  Counter shedSessions;    // wl.shed

  MetricsRegistry() {
    registerCounter("db.stmt_cache.hit", &stmtCacheHit);
    registerCounter("db.stmt_cache.miss", &stmtCacheMiss);
    registerCounter("db.plan_cache.hit", &planCacheHit);
    registerCounter("db.plan_cache.miss", &planCacheMiss);
    registerCounter("lb.health_flips", &lbHealthFlips);
    registerCounter("lb.reroutes", &lbReroutes);
    registerCounter("lb.timeouts", &lbTimeouts);
    registerCounter("lb.errors", &lbErrors);
    registerCounter("wl.arrivals", &openArrivals);
    registerCounter("wl.shed", &shedSessions);
  }
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Named instruments (create-or-get; deque storage keeps pointers
  // stable across creation) ----------------------------------------------
  Counter& counter(const std::string& name) {
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end()) return *it->second;
    Counter& c = counterStore_.emplace_back();
    registerCounter(name, &c);
    return c;
  }
  Gauge& gauge(const std::string& name) {
    auto it = gaugeIndex_.find(name);
    if (it != gaugeIndex_.end()) return *it->second;
    Gauge& g = gaugeStore_.emplace_back();
    gaugeIndex_.emplace(name, &g);
    // A plain gauge is sampled like a pull probe reading itself.
    gaugeProbes_.push_back({name, [&g] { return g.value(); }});
    return g;
  }
  HistogramInstrument& histogram(const std::string& name) {
    auto it = histogramIndex_.find(name);
    if (it != histogramIndex_.end()) return *it->second;
    HistogramInstrument& h = histogramStore_.emplace_back();
    histogramIndex_.emplace(name, &h);
    histograms_.push_back({name, &h});
    return h;
  }

  // --- Pull probes, sampled by the pump ----------------------------------
  struct GaugeProbe {
    std::string name;
    std::function<double()> read;
  };
  /// `cumulative` returns a monotone busy integral in unit-seconds; the
  /// pump differentiates it into per-interval utilization of `capacity`
  /// units. Kind Rate reuses the machinery for plain rates (grants/s,
  /// Mbit/s) with capacity 1.
  struct UtilizationProbe {
    std::string name;
    ResourceKind kind;
    double capacity;
    std::function<double()> cumulative;
  };
  /// Exact Little's-law triple for one resource: the time integral of
  /// jobs-in-system, completions, and the cumulative sojourn of completed
  /// jobs — L = dIntegral/dt, lambda = dCompleted/dt, W = dSojourn /
  /// dCompleted over any snapshot-aligned window.
  struct LittleProbe {
    std::string name;
    std::function<double()> jobIntegralSeconds;
    std::function<std::uint64_t()> completed;
    std::function<double()> sojournSeconds;
  };

  void addGaugeProbe(std::string name, std::function<double()> read) {
    gaugeProbes_.push_back({std::move(name), std::move(read)});
  }
  void addUtilizationProbe(std::string name, ResourceKind kind, double capacity,
                           std::function<double()> cumulative) {
    utilProbes_.push_back({std::move(name), kind, capacity, std::move(cumulative)});
  }
  void addLittleProbe(std::string name, std::function<double()> jobIntegralSeconds,
                      std::function<std::uint64_t()> completed,
                      std::function<double()> sojournSeconds) {
    littleProbes_.push_back({std::move(name), std::move(jobIntegralSeconds),
                             std::move(completed), std::move(sojournSeconds)});
  }

  // --- Per-run cache identity --------------------------------------------
  // The statement/plan caches are process-global and shared across the
  // worker threads of a parallel sweep, so "was it cached already?" is
  // nondeterministic. First use *within this run* is the deterministic
  // signal: the run's statement stream depends only on its seed.
  void recordStatementUse(const void* stmt) {
    (stmtSeen_.insert(stmt).second ? stmtCacheMiss : stmtCacheHit).add(1);
  }
  void recordPlanUse(const void* plan) {
    (planSeen_.insert(plan).second ? planCacheMiss : planCacheHit).add(1);
  }

  // --- Per-backend read fan-out ------------------------------------------
  void initBackendReads(const std::vector<std::string>& backendNames) {
    backendReads_.clear();
    for (const auto& name : backendNames) {
      backendReads_.push_back(&counter("db.read." + name));
    }
  }
  void recordBackendRead(std::size_t i) {
    if (i < backendReads_.size()) backendReads_[i]->add(1);
  }

  // --- Pump/report access -------------------------------------------------
  struct NamedCounter {
    std::string name;
    const Counter* value;
  };
  struct NamedHistogram {
    std::string name;
    const HistogramInstrument* value;
  };
  const std::vector<NamedCounter>& counters() const noexcept { return counters_; }
  const std::vector<GaugeProbe>& gaugeProbes() const noexcept { return gaugeProbes_; }
  const std::vector<UtilizationProbe>& utilizationProbes() const noexcept {
    return utilProbes_;
  }
  const std::vector<LittleProbe>& littleProbes() const noexcept { return littleProbes_; }
  const std::vector<NamedHistogram>& histograms() const noexcept { return histograms_; }

 private:
  void registerCounter(std::string name, Counter* c) {
    counterIndex_.emplace(name, c);
    counters_.push_back({std::move(name), c});
  }

  std::deque<Counter> counterStore_;
  std::deque<Gauge> gaugeStore_;
  std::deque<HistogramInstrument> histogramStore_;
  std::unordered_map<std::string, Counter*> counterIndex_;
  std::unordered_map<std::string, Gauge*> gaugeIndex_;
  std::unordered_map<std::string, HistogramInstrument*> histogramIndex_;
  std::vector<NamedCounter> counters_;
  std::vector<GaugeProbe> gaugeProbes_;
  std::vector<UtilizationProbe> utilProbes_;
  std::vector<LittleProbe> littleProbes_;
  std::vector<NamedHistogram> histograms_;
  std::unordered_set<const void*> stmtSeen_;
  std::unordered_set<const void*> planSeen_;
  std::vector<Counter*> backendReads_;
};

}  // namespace mwsim::obs
