#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace mwsim::mc {

/// The kernel has exactly two real sources of nondeterminism, both of which
/// the deterministic scheduler normally resolves by a fixed rule:
///
///  * EventTieBreak — several pending events share the earliest timestamp;
///    the default rule dispatches them in scheduling-seq order (FIFO).
///  * ResourceGrant / RwLockGrant — a lock release finds several waiters it
///    could legally wake; the default rule is strict FIFO (and, for RwLock,
///    the head writer among eligible writers).
///
/// A ChoiceStrategy intercepts those decisions. Model checking installs one
/// that records and replays choices to enumerate schedules; a randomized one
/// samples schedules; the default strategy (or none installed) reproduces
/// today's (time, seq) order bit-identically.
enum class ChoiceKind : std::uint8_t { EventTieBreak, ResourceGrant, RwLockGrant };

/// What the transition behind an alternative does, as far as the kernel can
/// know up front. Used by the explorer's independence analysis and by
/// property checkers; Other covers delay expiries and ad-hoc callbacks whose
/// footprint is only discoverable by executing them.
enum class Op : std::uint8_t {
  Other = 0,
  Spawn,         // first resumption of a top-level process
  AcquireGrant,  // Resource unit handed to a waiter
  ReadGrant,     // RwLock shared grant to a waiter
  WriteGrant,    // RwLock exclusive grant to a waiter
};

/// Descriptor of one alternative at a choice point.
///
///  * actor — 1 + the id of the top-level process the transition belongs to
///    (0 when unknown, e.g. harness callbacks scheduled outside any actor).
///  * object — stable id of the lock/resource involved (0 when none is
///    known up front). Ids come from Simulation::nextLockId(), assigned in
///    construction order, so they are identical across run-from-start
///    replays of the same scenario.
struct Alternative {
  std::uint64_t actor = 0;
  std::uint64_t object = 0;
  Op op = Op::Other;

  bool operator==(const Alternative&) const = default;
};

class ChoiceStrategy {
 public:
  virtual ~ChoiceStrategy() = default;

  /// Picks one of alts[0..n) (n >= 2; forced moves never reach the
  /// strategy). The alternatives are listed in the kernel's canonical order
  /// (ascending event seq / FIFO queue order), so returning 0 everywhere
  /// reproduces the default schedule exactly.
  virtual std::size_t choose(ChoiceKind kind, const Alternative* alts,
                             std::size_t n) = 0;
};

/// The identity strategy: always the canonical alternative. Installing it
/// must be observationally identical to installing no strategy at all
/// (guarded by tests/mc_test.cpp).
class DefaultStrategy final : public ChoiceStrategy {
 public:
  std::size_t choose(ChoiceKind, const Alternative*, std::size_t) override {
    return 0;
  }
};

/// Uniform random choice from a self-contained xorshift stream — schedule
/// *sampling* as opposed to the explorer's exhaustive enumeration. Does not
/// touch the simulation's Rng, so installing it perturbs nothing else.
class RandomStrategy final : public ChoiceStrategy {
 public:
  explicit RandomStrategy(std::uint64_t seed) : state_(seed | 1) {}

  std::size_t choose(ChoiceKind, const Alternative*, std::size_t n) override {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return static_cast<std::size_t>(state_ % n);
  }

 private:
  std::uint64_t state_;
};

/// One lock-subsystem state transition, streamed to the observer as it
/// happens. `writersWaiting` / `readersQueued` / `activeReaders` are the
/// lock's counts *after* the transition applied, on the lock the op is
/// about; `waited` is the queue delay a grant retired (0 for fast-path
/// grants, which never suspended).
struct LockOp {
  enum class Kind : std::uint8_t {
    ReadRequest,     // RwLock reader queued
    WriteRequest,    // RwLock writer queued
    ReadGrant,       // RwLock shared grant (queued or fast-path)
    WriteGrant,      // RwLock exclusive grant (queued or fast-path)
    ReadRelease,
    WriteRelease,
    AcquireRequest,  // Resource waiter queued
    AcquireGrant,    // Resource grant (queued or fast-path)
    Release,         // Resource unit released
  };

  Kind kind = Kind::Release;
  std::uint64_t object = 0;
  std::uint64_t actor = 0;
  sim::SimTime time = 0;
  int writersWaiting = 0;
  int readersQueued = 0;
  int activeReaders = 0;
  sim::Duration waited = 0;
};

/// Kernel-side callbacks for model checking: dispatch boundaries (the unit
/// of a "transition" in the explored schedule) and the lock-op stream that
/// both the property layer and the reduction's footprint analysis consume.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;

  /// The kernel is about to run the payload of the event described by `t`.
  virtual void onDispatchStart(const Alternative& t) = 0;
  /// The payload finished (including any lock ops it performed inline).
  virtual void onDispatchEnd() = 0;
  /// A lock/resource transition happened (inside some dispatch).
  virtual void onLockOp(const LockOp& op) = 0;
};

}  // namespace mwsim::mc
