#include "mc/explorer.hpp"

#include <algorithm>
#include <cassert>

#include "sim/simulation.hpp"

namespace mwsim::mc {

namespace {

bool disjoint(const std::vector<std::uint64_t>& a,
              const std::vector<std::uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return false;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return true;
}

/// Observed independence: two transitions commute iff they belong to
/// distinct, known actors and the lock sets they touched are disjoint.
/// Unknown actors (harness callbacks) are conservatively dependent on
/// everything.
bool independent(const Alternative& uAlt,
                 const std::vector<std::uint64_t>& uObjects,
                 const Alternative& t,
                 const std::vector<std::uint64_t>& tFootprint) {
  if (uAlt.actor == 0 || t.actor == 0 || uAlt.actor == t.actor) return false;
  return disjoint(uObjects, tFootprint);
}

}  // namespace

ExploreStats Explorer::explore(Scenario& scenario, const ExploreOptions& opt) {
  mode_ = Mode::Dfs;
  reduction_ = opt.reduction;
  stats_ = ExploreStats{};
  stack_.clear();
  for (;;) {
    runOnce(scenario, opt);
    ++stats_.schedules;
    if (stats_.schedules >= opt.maxSchedules) {
      stats_.complete = false;
      break;
    }
    if (!backtrack()) {
      stats_.complete = true;
      break;
    }
  }
  return std::move(stats_);
}

ExploreStats Explorer::sample(Scenario& scenario, std::uint64_t runs,
                              std::uint64_t seed) {
  mode_ = Mode::Random;
  stats_ = ExploreStats{};
  stack_.clear();
  ExploreOptions opt;
  for (std::uint64_t i = 0; i < runs; ++i) {
    random_ = RandomStrategy(seed + i);
    runOnce(scenario, opt);
    ++stats_.schedules;
  }
  stats_.complete = false;
  return std::move(stats_);
}

void Explorer::runOnce(Scenario& scenario, const ExploreOptions& opt) {
  depth_ = 0;
  runningSleep_.clear();
  pendingTieDepth_ = kNone;
  curTieDepth_ = kNone;
  inDispatch_ = false;
  randomTrace_.clear();
  checker_.reset();

  sim::Simulation sim(opt.seed);
  sim.setModelChecking(this, this);
  scenario.setUp(sim);
  sim.run();
  checker_.onRunEnd(sim.liveProcesses(), sim.now());
  // Detach before shutdown: destroying deadlocked frames releases their
  // LockHolds, and those phantom unlocks/grants must not reach the checker
  // or the footprint analysis.
  sim.setModelChecking(nullptr, nullptr);
  sim.shutdown();
  scenario.tearDown();

  if (checker_.maxWriterWait() > stats_.maxWriterWait) {
    stats_.maxWriterWait = checker_.maxWriterWait();
  }
  stats_.signatures.insert(checker_.signature());
  for (const PropertyViolation& v : checker_.violations()) {
    ++stats_.violationCount;
    if (stats_.violations.size() < opt.maxRecordedViolations) {
      stats_.violations.push_back(
          {v.property, v.detail, stats_.schedules, currentTrace()});
    }
  }
}

std::vector<ChoiceRecord> Explorer::currentTrace() const {
  if (mode_ == Mode::Random) return randomTrace_;
  std::vector<ChoiceRecord> trace;
  trace.reserve(depth_);
  for (std::size_t d = 0; d < depth_ && d < stack_.size(); ++d) {
    trace.push_back({stack_[d].chosen, stack_[d].alts.size(), stack_[d].kind});
  }
  return trace;
}

std::size_t Explorer::choose(ChoiceKind kind, const Alternative* alts,
                             std::size_t n) {
  assert(n >= 2);
  if (n > stats_.maxAlternatives) stats_.maxAlternatives = n;
  if (mode_ == Mode::Random) {
    const std::size_t pick = random_.choose(kind, alts, n);
    randomTrace_.push_back({pick, n, kind});
    return pick;
  }

  const std::size_t d = depth_++;
  if (d == stack_.size()) {
    // Fresh node: freeze the alternatives and the sleep set at entry (the
    // path above it is fixed while it stays on the stack, so both stay
    // valid across replays).
    Node nd;
    nd.kind = kind;
    nd.alts.assign(alts, alts + n);
    nd.footprints.resize(n);
    nd.executed.assign(n, 0);
    nd.done.assign(n, 0);
    nd.skipped.assign(n, 0);
    if (kind == ChoiceKind::EventTieBreak) nd.sleepAtEntry = runningSleep_;
    stack_.push_back(std::move(nd));
    ++stats_.choicePoints;
    Node& back = stack_.back();
    back.chosen = nextChoice(back, 0);
    // All alternatives slept can only mean this whole node is redundant;
    // running the canonical one once is sound (just not minimal).
    if (back.chosen == back.alts.size()) back.chosen = 0;
  }
  Node& nd = stack_[d];
  assert(nd.kind == kind && nd.alts.size() == n &&
         "nondeterministic replay: choice points diverged between runs");
  if (kind == ChoiceKind::EventTieBreak) pendingTieDepth_ = d;
  return nd.chosen;
}

void Explorer::onDispatchStart(const Alternative& t) {
  inDispatch_ = true;
  curAlt_ = t;
  curFp_.clear();
  if (t.object != 0) curFp_.push_back(t.object);
  curTieDepth_ = pendingTieDepth_;
  pendingTieDepth_ = kNone;
}

void Explorer::onDispatchEnd() {
  inDispatch_ = false;
  if (mode_ == Mode::Random) return;
  std::sort(curFp_.begin(), curFp_.end());
  curFp_.erase(std::unique(curFp_.begin(), curFp_.end()), curFp_.end());

  if (curTieDepth_ != kNone) {
    // The dispatch we just ran was the chosen alternative of a tie-break
    // node: record its footprint and compute the child sleep set
    //   sleep' = { u in sleep(n) ∪ done(n) : independent(u, chosen) }
    // (Godefroid-style; done(n) are the alternatives whose subtrees are
    // already fully explored, each with a footprint from that exploration.)
    Node& nd = stack_[curTieDepth_];
    nd.footprints[nd.chosen] = curFp_;
    nd.executed[nd.chosen] = 1;
    std::vector<SleepEntry> next;
    for (const SleepEntry& u : nd.sleepAtEntry) {
      if (independent(u.alt, u.objects, curAlt_, curFp_)) next.push_back(u);
    }
    for (std::size_t i = 0; i < nd.alts.size(); ++i) {
      if (i == nd.chosen || !nd.done[i] || !nd.executed[i]) continue;
      if (independent(nd.alts[i], nd.footprints[i], curAlt_, curFp_)) {
        next.push_back({nd.alts[i], nd.footprints[i]});
      }
    }
    runningSleep_ = std::move(next);
  } else if (!runningSleep_.empty()) {
    // Forced transition: wake every sleeping transition that depends on it
    // (including any with the same actor — i.e. the sleeper itself, if the
    // schedule was forced through it).
    std::erase_if(runningSleep_, [&](const SleepEntry& u) {
      return !independent(u.alt, u.objects, curAlt_, curFp_);
    });
  }
  curTieDepth_ = kNone;
}

void Explorer::onLockOp(const LockOp& op) {
  checker_.onLockOp(op);
  if (inDispatch_ && op.object != 0) curFp_.push_back(op.object);
}

bool Explorer::isSlept(const Node& nd, std::size_t i) const {
  // Reduction applies only to event tie-breaks: grant alternatives all name
  // the same lock, so no pair of them is ever independent. Index 0 (the
  // canonical order) is never pruned, which guarantees progress even if a
  // sleep set covers every alternative.
  if (!reduction_ || nd.kind != ChoiceKind::EventTieBreak || i == 0) {
    return false;
  }
  const Alternative& a = nd.alts[i];
  if (a.actor == 0) return false;
  // Descriptors are (actor, object, op); two simultaneous pending events of
  // one actor could collide, so never prune when the actor is ambiguous.
  for (std::size_t j = 0; j < nd.alts.size(); ++j) {
    if (j != i && nd.alts[j].actor == a.actor) return false;
  }
  for (const SleepEntry& u : nd.sleepAtEntry) {
    if (u.alt == a) return true;
  }
  return false;
}

std::size_t Explorer::nextChoice(Node& nd, std::size_t from) {
  for (std::size_t i = from; i < nd.alts.size(); ++i) {
    if (nd.done[i] || nd.skipped[i]) continue;
    if (isSlept(nd, i)) {
      nd.skipped[i] = 1;
      ++stats_.prunedBranches;
      continue;
    }
    return i;
  }
  return nd.alts.size();
}

bool Explorer::backtrack() {
  while (!stack_.empty()) {
    Node& nd = stack_.back();
    nd.done[nd.chosen] = 1;
    const std::size_t next = nextChoice(nd, nd.chosen + 1);
    if (next < nd.alts.size()) {
      nd.chosen = next;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

}  // namespace mwsim::mc
