#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "mc/choice.hpp"
#include "mc/properties.hpp"
#include "sim/time.hpp"

namespace mwsim::sim {
class Simulation;
}

namespace mwsim::mc {

/// One miniature workload under exploration. The explorer reconstructs the
/// scenario from scratch for every schedule (run-from-start replay — the
/// kernel dispatches millions of events per second, so rebuilding a
/// dozen-actor model is microseconds), so setUp() must be deterministic:
/// same construction order, same delays, no wall-clock or global state.
///
/// Lifecycle per schedule: setUp(sim) builds locks/machines and spawns the
/// actors (keeping everything alive in scenario-owned state); the explorer
/// runs the simulation to quiescence, evaluates end-of-run properties,
/// shuts the simulation down (destroying suspended frames while the locks
/// they reference are still alive), then calls tearDown() to drop the
/// state.
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual const char* name() const = 0;
  virtual const char* description() const { return ""; }
  virtual void setUp(sim::Simulation& sim) = 0;
  virtual void tearDown() = 0;
};

struct ExploreOptions {
  /// Hard cap on executed schedules; exploration reports complete=false if
  /// it hits the cap before exhausting the tree.
  std::uint64_t maxSchedules = 1u << 20;
  /// Sleep-set pruning keyed on observed lock-footprint independence.
  bool reduction = true;
  /// Simulation seed (the scenarios are deterministic, but components
  /// derive Rngs from it, so it is part of the model's identity).
  std::uint64_t seed = 1;
  std::size_t maxRecordedViolations = 4;
};

struct ChoiceRecord {
  std::size_t chosen = 0;
  std::size_t alternatives = 0;
  ChoiceKind kind = ChoiceKind::EventTieBreak;
};

struct RecordedViolation {
  std::string property;
  std::string detail;
  std::uint64_t schedule = 0;        // 0-based index of the failing schedule
  std::vector<ChoiceRecord> trace;   // replayable choice trace
};

struct ExploreStats {
  std::uint64_t schedules = 0;       // schedules actually executed
  std::uint64_t prunedBranches = 0;  // alternative branches skipped by sleep sets
  std::uint64_t choicePoints = 0;    // distinct choice nodes in the explored tree
  std::size_t maxAlternatives = 0;   // widest choice point seen
  std::uint64_t violationCount = 0;
  std::vector<RecordedViolation> violations;  // first few, with traces
  sim::Duration maxWriterWait = 0;   // across all schedules (virtual time)
  bool complete = false;             // true iff the DFS exhausted the tree
  /// Distinct per-lock/per-actor lock-history classes seen — the reduced
  /// and unreduced explorations of one scenario must produce the same set.
  std::unordered_set<std::uint64_t> signatures;
};

/// Stateless-search DFS explorer over the kernel's choice points, in the
/// style of SimGrid's DFSExplorer: each schedule is executed from the
/// start, choices are recorded on a stack, and backtracking flips the
/// deepest choice with an untried alternative. Reduction is by sleep sets
/// over an independence relation observed at runtime: two same-timestamp
/// event dispatches commute iff they belong to different actors and their
/// executed footprints (the set of locks each touched) are disjoint.
/// Waiter-grant choice points always involve one lock, so every pair of
/// grant alternatives is dependent and reduction never prunes there —
/// they are enumerated exhaustively.
class Explorer final : public ChoiceStrategy, public KernelObserver {
 public:
  /// Exhaustive (up to opt.maxSchedules) DFS enumeration with property
  /// checking on every schedule.
  ExploreStats explore(Scenario& scenario, const ExploreOptions& opt = {});

  /// Random schedule sampling under RandomStrategy(seed + i), property
  /// checking each of `runs` schedules. No enumeration, no completeness —
  /// the cheap smoke-test counterpart of explore().
  ExploreStats sample(Scenario& scenario, std::uint64_t runs,
                      std::uint64_t seed);

  // Kernel-facing hooks (installed via Simulation::setModelChecking; not
  // for direct use).
  std::size_t choose(ChoiceKind kind, const Alternative* alts,
                     std::size_t n) override;
  void onDispatchStart(const Alternative& t) override;
  void onDispatchEnd() override;
  void onLockOp(const LockOp& op) override;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// A transition asleep on the current path: its descriptor plus the lock
  /// footprint observed when it executed in a previously explored branch.
  struct SleepEntry {
    Alternative alt;
    std::vector<std::uint64_t> objects;  // sorted
  };

  struct Node {
    ChoiceKind kind = ChoiceKind::EventTieBreak;
    std::vector<Alternative> alts;
    std::vector<std::vector<std::uint64_t>> footprints;  // per executed alt
    std::vector<char> executed;  // footprint known
    std::vector<char> done;      // subtree fully explored
    std::vector<char> skipped;   // pruned by sleep set (counted once)
    std::size_t chosen = 0;
    std::vector<SleepEntry> sleepAtEntry;
  };

  void runOnce(Scenario& scenario, const ExploreOptions& opt);
  bool backtrack();
  bool isSlept(const Node& nd, std::size_t i) const;
  std::size_t nextChoice(Node& nd, std::size_t from);
  std::vector<ChoiceRecord> currentTrace() const;

  enum class Mode { Dfs, Random };
  Mode mode_ = Mode::Dfs;
  bool reduction_ = true;
  RandomStrategy random_{1};

  std::vector<Node> stack_;
  std::size_t depth_ = 0;
  std::vector<SleepEntry> runningSleep_;
  std::size_t pendingTieDepth_ = kNone;  // set by choose(), consumed at dispatch
  std::size_t curTieDepth_ = kNone;
  bool inDispatch_ = false;
  Alternative curAlt_{};
  std::vector<std::uint64_t> curFp_;
  std::vector<ChoiceRecord> randomTrace_;  // per-run trace in Random mode

  PropertyChecker checker_;
  ExploreStats stats_;
};

}  // namespace mwsim::mc
