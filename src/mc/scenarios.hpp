#pragma once

#include <memory>
#include <vector>

#include "mc/explorer.hpp"

namespace mwsim::mc {

/// Miniature lock-subsystem workloads for exhaustive exploration. Each is a
/// few actors and a few microseconds of virtual time — small enough that the
/// DFS exhausts every causally distinct schedule, yet exercising the exact
/// disciplines the paper's contention results hinge on.

/// 2 readers + 2 writers on one MyISAM-style table lock, two rounds each,
/// arrivals aligned. With `readerPreferenceMutation` the lock drops writer
/// priority — the seeded bug the checker must catch.
std::unique_ptr<Scenario> makeMyisamRw(bool readerPreferenceMutation);

/// Two actors taking nested two-table `LOCK TABLES`-style write locks plus
/// a reader. With `reversedOrder` false both actors acquire in sorted table
/// order (the discipline mw::DatabaseServer enforces via its sorted
/// explicit-lock map) — deadlock-free in every schedule. With it true the
/// second actor acquires in the opposite order: the default schedule happens
/// to be fine, but some interleavings deadlock — the classic lurking cycle
/// one-schedule-per-seed testing cannot find.
std::unique_ptr<Scenario> makeLockTables(bool reversedOrder);

/// Three actors contending on one capacity-1 mutex (a co-located servlet's
/// Java-synchronized shared state), two rounds each. Java monitors promise
/// no fairness, so the waiter-grant choice point is real nondeterminism.
std::unique_ptr<Scenario> makeServletSync();

/// Master/replica write stream from mw::DbCluster: two writers serialize on
/// the cluster write stream then apply to every backend's table lock in
/// backend order; one reader per backend reads its replica.
std::unique_ptr<Scenario> makeClusterWrite();

/// Two independent lock shards (two actors on each of two unrelated locks):
/// the showcase for sleep-set reduction — cross-shard orderings commute, so
/// the reduced exploration visits far fewer schedules than the full one
/// while covering the same equivalence classes.
std::unique_ptr<Scenario> makeIndependentShards();

/// The green suite: properties must hold on every schedule and exploration
/// must complete.
std::vector<std::unique_ptr<Scenario>> greenScenarios();

}  // namespace mwsim::mc
