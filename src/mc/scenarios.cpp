#include "mc/scenarios.hpp"

#include <utility>

#include "middleware/cost_model.hpp"
#include "middleware/db_cluster.hpp"
#include "middleware/policy.hpp"
#include "net/machine.hpp"
#include "sim/resource.hpp"
#include "sim/rwlock.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace mwsim::mc {

namespace {

using sim::Task;

/// One virtual microsecond. All scenario actors pace themselves in whole
/// ticks so that their request events collide at the same timestamps — the
/// tie-breaks those collisions create are exactly the schedules under test.
constexpr sim::Duration kTick = 1000;

// ---------------------------------------------------------------------------
// myisam_rw: 2 readers + 2 writers on one table lock, two rounds each.
// ---------------------------------------------------------------------------

class MyisamRwScenario final : public Scenario {
 public:
  explicit MyisamRwScenario(bool mutation) : mutation_(mutation) {}

  const char* name() const override {
    return mutation_ ? "myisam_rw_reader_pref" : "myisam_rw";
  }
  const char* description() const override {
    return "2 readers + 2 writers, one MyISAM-style table lock, 2 rounds";
  }

  void setUp(sim::Simulation& sim) override {
    st_ = std::make_unique<State>(sim);
    if (mutation_) st_->table.enableReaderPreferenceMutation();
    sim.spawn(reader(*st_));
    sim.spawn(reader(*st_));
    sim.spawn(writer(*st_));
    sim.spawn(writer(*st_));
  }
  void tearDown() override { st_.reset(); }

 private:
  struct State {
    explicit State(sim::Simulation& s) : sim(s), table(s, "items") {}
    sim::Simulation& sim;
    sim::RwLock table;
  };

  static Task<> reader(State& st) {
    for (int round = 0; round < 2; ++round) {
      co_await st.sim.delay(kTick);
      sim::LockHold hold = co_await st.table.lockRead();
      co_await st.sim.delay(kTick);
    }
  }
  static Task<> writer(State& st) {
    for (int round = 0; round < 2; ++round) {
      co_await st.sim.delay(kTick);
      sim::LockHold hold = co_await st.table.lockWrite();
      co_await st.sim.delay(kTick);
    }
  }

  bool mutation_;
  std::unique_ptr<State> st_;
};

// ---------------------------------------------------------------------------
// lock_tables: nested two-table write locks, ordered vs reversed.
// ---------------------------------------------------------------------------

class LockTablesScenario final : public Scenario {
 public:
  explicit LockTablesScenario(bool reversed) : reversed_(reversed) {}

  const char* name() const override {
    return reversed_ ? "lock_tables_reversed" : "lock_tables_ordered";
  }
  const char* description() const override {
    return reversed_
               ? "nested LOCK TABLES in opposite orders — deadlocks in some "
                 "schedules only"
               : "nested LOCK TABLES in sorted table order — deadlock-free";
  }

  void setUp(sim::Simulation& sim) override {
    st_ = std::make_unique<State>(sim);
    sim.spawn(forwardLocker(*st_));
    sim.spawn(reversed_ ? reversedLocker(*st_) : laggedForwardLocker(*st_));
    sim.spawn(reader(*st_));
  }
  void tearDown() override { st_.reset(); }

 private:
  struct State {
    explicit State(sim::Simulation& s)
        : sim(s), t1(s, "customers"), t2(s, "orders") {}
    sim::Simulation& sim;
    sim::RwLock t1;
    sim::RwLock t2;
  };

  // Takes t1 then t2 (sorted order), starting at tick 1.
  static Task<> forwardLocker(State& st) {
    co_await st.sim.delay(kTick);
    sim::LockHold a = co_await st.t1.lockWrite();
    co_await st.sim.delay(kTick);
    sim::LockHold b = co_await st.t2.lockWrite();
    co_await st.sim.delay(kTick);
  }
  // Same discipline, one tick later — contends on t1/t2 but cannot cycle.
  static Task<> laggedForwardLocker(State& st) {
    co_await st.sim.delay(kTick);
    co_await st.sim.delay(kTick);
    sim::LockHold a = co_await st.t1.lockWrite();
    co_await st.sim.delay(kTick);
    sim::LockHold b = co_await st.t2.lockWrite();
    co_await st.sim.delay(kTick);
  }
  // Takes t2 then t1, with its t2 request colliding with the forward
  // locker's t2 request at tick 2. In the canonical (time, seq) order the
  // forward locker wins the tie, acquires both tables and drains — but the
  // flipped tie gives this actor t2 while the forward locker holds t1, and
  // the next hop closes the cycle. The deadlock lives in some schedules
  // only, which is precisely what per-seed testing cannot see.
  static Task<> reversedLocker(State& st) {
    co_await st.sim.delay(kTick);
    co_await st.sim.delay(kTick);
    sim::LockHold a = co_await st.t2.lockWrite();
    co_await st.sim.delay(kTick);
    sim::LockHold b = co_await st.t1.lockWrite();
    co_await st.sim.delay(kTick);
  }
  static Task<> reader(State& st) {
    co_await st.sim.delay(kTick);
    {
      sim::LockHold h = co_await st.t1.lockRead();
      co_await st.sim.delay(kTick);
    }
    {
      sim::LockHold h = co_await st.t2.lockRead();
      co_await st.sim.delay(kTick);
    }
  }

  bool reversed_;
  std::unique_ptr<State> st_;
};

// ---------------------------------------------------------------------------
// servlet_sync: three actors on a capacity-1 mutex, two rounds each.
// ---------------------------------------------------------------------------

class ServletSyncScenario final : public Scenario {
 public:
  const char* name() const override { return "servlet_sync"; }
  const char* description() const override {
    return "3 servlet threads on one synchronized block, 2 rounds";
  }

  void setUp(sim::Simulation& sim) override {
    st_ = std::make_unique<State>(sim);
    sim.spawn(thread(*st_));
    sim.spawn(thread(*st_));
    sim.spawn(thread(*st_));
  }
  void tearDown() override { st_.reset(); }

 private:
  struct State {
    explicit State(sim::Simulation& s)
        : sim(s), monitor(s, 1, "servlet.sync") {}
    sim::Simulation& sim;
    sim::Mutex monitor;
  };

  static Task<> thread(State& st) {
    for (int round = 0; round < 2; ++round) {
      co_await st.sim.delay(kTick);
      sim::ResourceHold hold = co_await st.monitor.acquire();
      co_await st.sim.delay(kTick);
    }
  }

  std::unique_ptr<State> st_;
};

// ---------------------------------------------------------------------------
// cluster_write_stream: mw::DbCluster master/replica write fan-out.
// ---------------------------------------------------------------------------

class ClusterWriteScenario final : public Scenario {
 public:
  const char* name() const override { return "cluster_write_stream"; }
  const char* description() const override {
    return "2 writers through the DbCluster write stream onto 2 replicas, "
           "1 reader per replica";
  }

  void setUp(sim::Simulation& sim) override {
    st_ = std::make_unique<State>(sim);
    sim.spawn(writer(*st_));
    sim.spawn(writer(*st_));
    sim.spawn(reader(*st_, 0));
    sim.spawn(reader(*st_, 1));
  }
  void tearDown() override { st_.reset(); }

 private:
  struct State {
    explicit State(sim::Simulation& s)
        : sim(s),
          m0(s, "ClusterDb#1"),
          m1(s, "ClusterDb#2"),
          cluster(s, cost, mw::DbPolicy::MasterReplica, {&m0, &m1},
                  makeDatabases()) {
      // Create the table locks up front so their mc ids depend only on
      // construction order, never on which actor reaches them first.
      cluster.backend(0).tableLock("items");
      cluster.backend(1).tableLock("items");
    }
    static std::vector<db::Database> makeDatabases() {
      std::vector<db::Database> dbs(2);
      return dbs;
    }
    sim::Simulation& sim;
    mw::CostModel cost;
    net::Machine m0;
    net::Machine m1;
    mw::DbCluster cluster;
  };

  // The replication discipline DbSession uses for MasterReplica writes:
  // serialize on the cluster write stream, then apply to every backend in
  // backend order (ordered acquisition — no cross-writer lock cycles).
  static Task<> writer(State& st) {
    co_await st.sim.delay(kTick);
    sim::ResourceHold stream = co_await st.cluster.writeStream()->acquire();
    for (std::size_t b = 0; b < st.cluster.size(); ++b) {
      sim::LockHold lock =
          co_await st.cluster.backend(b).tableLock("items").lockWrite();
      co_await st.sim.delay(kTick);
    }
  }
  static Task<> reader(State& st, std::size_t backend) {
    for (int round = 0; round < 2; ++round) {
      co_await st.sim.delay(kTick);
      sim::LockHold lock =
          co_await st.cluster.backend(backend).tableLock("items").lockRead();
      co_await st.sim.delay(kTick);
    }
  }

  std::unique_ptr<State> st_;
};

// ---------------------------------------------------------------------------
// independent_shards: two unrelated locks, two actors each.
// ---------------------------------------------------------------------------

class IndependentShardsScenario final : public Scenario {
 public:
  const char* name() const override { return "independent_shards"; }
  const char* description() const override {
    return "2 actors on each of 2 unrelated locks — cross-shard orders "
           "commute, sleep sets prune them";
  }

  void setUp(sim::Simulation& sim) override {
    st_ = std::make_unique<State>(sim);
    sim.spawn(locker(*st_, st_->shardA));
    sim.spawn(locker(*st_, st_->shardA));
    sim.spawn(locker(*st_, st_->shardB));
    sim.spawn(locker(*st_, st_->shardB));
  }
  void tearDown() override { st_.reset(); }

 private:
  struct State {
    explicit State(sim::Simulation& s)
        : sim(s), shardA(s, "shardA"), shardB(s, "shardB") {}
    sim::Simulation& sim;
    sim::RwLock shardA;
    sim::RwLock shardB;
  };

  static Task<> locker(State& st, sim::RwLock& shard) {
    co_await st.sim.delay(kTick);
    sim::LockHold hold = co_await shard.lockWrite();
    co_await st.sim.delay(kTick);
  }

  std::unique_ptr<State> st_;
};

}  // namespace

std::unique_ptr<Scenario> makeMyisamRw(bool readerPreferenceMutation) {
  return std::make_unique<MyisamRwScenario>(readerPreferenceMutation);
}
std::unique_ptr<Scenario> makeLockTables(bool reversedOrder) {
  return std::make_unique<LockTablesScenario>(reversedOrder);
}
std::unique_ptr<Scenario> makeServletSync() {
  return std::make_unique<ServletSyncScenario>();
}
std::unique_ptr<Scenario> makeClusterWrite() {
  return std::make_unique<ClusterWriteScenario>();
}
std::unique_ptr<Scenario> makeIndependentShards() {
  return std::make_unique<IndependentShardsScenario>();
}

std::vector<std::unique_ptr<Scenario>> greenScenarios() {
  std::vector<std::unique_ptr<Scenario>> out;
  out.push_back(makeMyisamRw(false));
  out.push_back(makeLockTables(false));
  out.push_back(makeServletSync());
  out.push_back(makeClusterWrite());
  out.push_back(makeIndependentShards());
  return out;
}

}  // namespace mwsim::mc
