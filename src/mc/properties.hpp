#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "mc/choice.hpp"

namespace mwsim::mc {

struct PropertyViolation {
  std::string property;  // "deadlock-freedom" | "writer-priority" | "bounded-writer-wait"
  std::string detail;
};

/// Evaluates the lock-subsystem properties over one schedule's LockOp
/// stream, at every transition of that schedule:
///
///  * deadlock-freedom — when the event queue drains, no top-level process
///    may still be suspended (the only thing a quiesced process can be
///    blocked on is a lock queue, so leftovers == a wait cycle);
///  * writer-priority — a reader whose request arrived *after* a writer
///    queued on the same lock is never granted before that writer. (Readers
///    that were already queued when the writer arrived may legally be
///    granted first — they are FIFO predecessors, not overtakers.)
///  * bounded writer wait — between a writer's request and its grant, the
///    number of readers granted on that lock is at most the batch already
///    queued ahead of the writer when it arrived. Writer-priority forbids
///    the rest, so a waiting writer is overtaken by at most one in-flight
///    reader batch — the non-starvation half of the MyISAM discipline.
///
/// The checker also folds every op into per-lock and per-actor FNV-1a
/// streams; signature() identifies the schedule's Mazurkiewicz-style
/// equivalence class (order matters within a lock and within an actor,
/// not across), which the tests use to prove the reduced exploration
/// covers the same classes as the full one.
class PropertyChecker {
 public:
  void reset() { *this = PropertyChecker{}; }

  void onLockOp(const LockOp& op) {
    ++opSeq_;
    hashOp(op);
    switch (op.kind) {
      case LockOp::Kind::ReadRequest:
        readRequestSeq_[readerKey(op.object, op.actor)] = opSeq_;
        break;
      case LockOp::Kind::WriteRequest:
        waitingWriters_[op.object].push_back(
            WaitingWriter{op.actor, op.time, opSeq_, op.readersQueued, 0});
        break;
      case LockOp::Kind::ReadGrant:
        onReadGrant(op);
        break;
      case LockOp::Kind::WriteGrant:
        onWriteGrant(op);
        break;
      default:
        break;
    }
  }

  /// End-of-schedule check: the queue drained; anything still live is
  /// blocked in a lock queue forever.
  void onRunEnd(std::size_t liveProcesses, sim::SimTime at) {
    if (liveProcesses > 0) {
      std::ostringstream os;
      os << liveProcesses << " process(es) still blocked on locks at t="
         << at << "ns with an empty event queue";
      violations_.push_back({"deadlock-freedom", os.str()});
    }
  }

  const std::vector<PropertyViolation>& violations() const {
    return violations_;
  }
  sim::Duration maxWriterWait() const { return maxWriterWait_; }

  std::uint64_t signature() const {
    std::uint64_t s = 0;
    for (const auto& [object, h] : objectHash_) s += h * 0x9e3779b97f4a7c15ULL;
    for (const auto& [actor, h] : actorHash_) s += h * 0xb5297a4d3f8c2d41ULL;
    return s;
  }

 private:
  struct WaitingWriter {
    std::uint64_t actor;
    sim::SimTime since;
    std::uint64_t requestSeq;  // logical clock at WriteRequest
    int allowance;             // readers queued ahead at request time
    int readerGrantsDuring;    // readers granted on the lock while waiting
  };

  static std::uint64_t readerKey(std::uint64_t object, std::uint64_t actor) {
    return object * 0x100000001b3ULL ^ actor;
  }

  void onReadGrant(const LockOp& op) {
    // A queued grant retires the ReadRequest recorded at suspension; a
    // fast-path grant (no request op) happened at this very instant.
    std::uint64_t readerSeq = opSeq_;
    if (auto it = readRequestSeq_.find(readerKey(op.object, op.actor));
        it != readRequestSeq_.end()) {
      readerSeq = it->second;
      readRequestSeq_.erase(it);
    }
    auto wit = waitingWriters_.find(op.object);
    if (wit == waitingWriters_.end()) return;
    for (WaitingWriter& w : wit->second) {
      if (w.requestSeq < readerSeq) {
        std::ostringstream os;
        os << "reader (actor " << op.actor << ") granted lock " << op.object
           << " at t=" << op.time << "ns although writer (actor " << w.actor
           << ") has been waiting since t=" << w.since << "ns";
        violations_.push_back({"writer-priority", os.str()});
      }
      ++w.readerGrantsDuring;
      if (w.readerGrantsDuring > w.allowance) {
        std::ostringstream os;
        os << "writer (actor " << w.actor << ") on lock " << op.object
           << " overtaken by " << w.readerGrantsDuring
           << " reader grant(s), more than the " << w.allowance
           << " queued ahead of it at request time";
        violations_.push_back({"bounded-writer-wait", os.str()});
      }
    }
  }

  void onWriteGrant(const LockOp& op) {
    if (op.waited > maxWriterWait_) maxWriterWait_ = op.waited;
    if (auto it = waitingWriters_.find(op.object);
        it != waitingWriters_.end()) {
      auto& ws = it->second;
      ws.erase(std::remove_if(ws.begin(), ws.end(),
                              [&](const WaitingWriter& w) {
                                return w.actor == op.actor;
                              }),
               ws.end());
    }
  }

  void hashOp(const LockOp& op) {
    constexpr std::uint64_t kOffset = 14695981039346656037ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    const auto mix = [](std::uint64_t& h, std::uint64_t v) {
      h = (h ^ v) * kPrime;
    };
    auto& ho = objectHash_.try_emplace(op.object, kOffset).first->second;
    mix(ho, static_cast<std::uint64_t>(op.kind));
    mix(ho, op.actor);
    auto& ha = actorHash_.try_emplace(op.actor, kOffset).first->second;
    mix(ha, static_cast<std::uint64_t>(op.kind));
    mix(ha, op.object);
  }

  std::uint64_t opSeq_ = 0;  // logical clock over this schedule's lock ops
  std::unordered_map<std::uint64_t, std::uint64_t> readRequestSeq_;
  std::unordered_map<std::uint64_t, std::vector<WaitingWriter>> waitingWriters_;
  std::unordered_map<std::uint64_t, std::uint64_t> objectHash_;
  std::unordered_map<std::uint64_t, std::uint64_t> actorHash_;
  std::vector<PropertyViolation> violations_;
  sim::Duration maxWriterWait_ = 0;
};

}  // namespace mwsim::mc
