#pragma once

#include <string>
#include <vector>

#include "net/machine.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mwsim::stats {

/// One per-machine sample of a time series.
struct Sample {
  sim::SimTime time = 0;
  double cpuUtilization = 0.0;
  double nicMbps = 0.0;
};

/// sysstat-style periodic sampler (paper §4.5: "the sysstat utility ...
/// every second collects CPU, memory, network and disk usage"). Spawns a
/// simulated process that snapshots each machine's busy integrals every
/// `period` and derives per-interval utilization — the data behind
/// "100% utilized throughout the peak plateau"-style statements.
class Sampler {
 public:
  Sampler(sim::Simulation& simulation, sim::Duration period = sim::kSecond)
      : sim_(simulation), period_(period) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void addMachine(const net::Machine* machine) {
    machines_.push_back(machine);
    series_.emplace_back();
    lastCpu_.push_back(0.0);
    lastNicBytes_.push_back(0);
  }

  /// Starts sampling; runs until the simulation is shut down.
  void start() {
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      lastCpu_[i] = machines_[i]->cpu().busyCoreSeconds();
      lastNicBytes_[i] = machines_[i]->nic().bytesTransferred();
    }
    lastSample_ = sim_.now();
    sim_.spawn(loop());
  }

  /// Records the final partial interval. The sampling loop only fires on
  /// whole periods, so without this a run that stops mid-period silently
  /// drops its tail — short runs under-report trailing activity. Call once
  /// when measurement stops; utilization is scaled by the actual elapsed
  /// time, so a partial interval reports correctly.
  void flush() {
    if (sim_.now() > lastSample_) recordSamples(sim_.now() - lastSample_);
  }

  const std::vector<Sample>& series(std::size_t machine) const {
    return series_.at(machine);
  }
  std::size_t machineCount() const noexcept { return machines_.size(); }
  const net::Machine& machine(std::size_t i) const { return *machines_.at(i); }

  /// Fraction of samples in [from, to] with CPU utilization above the
  /// threshold — e.g. "the database CPU is 100% utilized throughout the
  /// peak plateau" (paper §5.1).
  double fractionAbove(std::size_t machine, double threshold, sim::SimTime from,
                       sim::SimTime to) const {
    std::size_t total = 0;
    std::size_t above = 0;
    for (const Sample& s : series_.at(machine)) {
      if (s.time < from || s.time > to) continue;
      ++total;
      if (s.cpuUtilization > threshold) ++above;
    }
    return total == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(total);
  }

 private:
  sim::Task<> loop() {
    for (;;) {
      co_await sim_.delay(period_);
      recordSamples(period_);
    }
  }

  void recordSamples(sim::Duration elapsed) {
    const double seconds = sim::toSeconds(elapsed);
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      const net::Machine& m = *machines_[i];
      const double cpu = m.cpu().busyCoreSeconds();
      const auto bytes = m.nic().bytesTransferred();
      Sample s;
      s.time = sim_.now();
      s.cpuUtilization = (cpu - lastCpu_[i]) / (seconds * m.cpu().cores());
      s.nicMbps =
          static_cast<double>(bytes - lastNicBytes_[i]) * 8.0 / seconds / 1e6;
      series_[i].push_back(s);
      lastCpu_[i] = cpu;
      lastNicBytes_[i] = bytes;
    }
    lastSample_ = sim_.now();
  }

  sim::Simulation& sim_;
  sim::Duration period_;
  sim::SimTime lastSample_ = 0;
  std::vector<const net::Machine*> machines_;
  std::vector<std::vector<Sample>> series_;
  std::vector<double> lastCpu_;
  std::vector<std::uint64_t> lastNicBytes_;
};

}  // namespace mwsim::stats
