#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mwsim::stats {

/// Fixed-width text table for bench output — prints the rows/series the
/// paper's figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  std::string str() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    std::string out;
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < headers_.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : kEmpty;
        out += cell;
        out.append(widths[i] - cell.size() + 2, ' ');
      }
      while (!out.empty() && out.back() == ' ') out.pop_back();
      out += '\n';
    };
    emit(headers_);
    std::vector<std::string> rule;
    for (std::size_t w : widths) rule.push_back(std::string(w, '-'));
    emit(rule);
    for (const auto& row : rows_) emit(row);
    return out;
  }

 private:
  inline static const std::string kEmpty;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV writer with the same row interface as TextTable.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  std::string str() const {
    std::string out = join(headers_);
    for (const auto& row : rows_) out += join(row);
    return out;
  }

 private:
  static std::string join(const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) line += ',';
      const bool quote = cells[i].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        line += '"';
        for (char c : cells[i]) {
          if (c == '"') line += '"';
          line += c;
        }
        line += '"';
      } else {
        line += cells[i];
      }
    }
    line += '\n';
    return line;
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper for table cells.
inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmtInt(std::int64_t v) { return std::to_string(v); }

/// Percentage with one decimal, e.g. "98.5%".
inline std::string fmtPct(double fraction, int decimals = 1) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace mwsim::stats
