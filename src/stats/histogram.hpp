#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mwsim::stats {

/// Log-bucketed histogram for positive values (response times in seconds).
///
/// Buckets span [1 µs, ~1 hour) with ~4.6 % relative resolution, which is
/// plenty for reporting means and percentiles of simulated latencies.
class Histogram {
 public:
  Histogram() : buckets_(kBuckets, 0) {}

  void record(double value) {
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
    min_ = count_ == 1 ? value : std::min(min_, value);
    buckets_[bucketFor(value)]++;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return max_; }

  /// Value at percentile p in [0, 100]. Returns a bucket upper bound,
  /// clamped into [min(), max()] so the estimate can never leave the
  /// recorded range (the raw bound of the last occupied bucket may exceed
  /// the largest recorded value by up to the bucket width). percentile(0)
  /// is the recorded minimum.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return min_;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return std::clamp(bucketUpperBound(i), min_, max_);
    }
    return max_;
  }

  void clear() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

 private:
  static constexpr std::size_t kBuckets = 512;
  static constexpr double kMinValue = 1e-6;
  static constexpr double kGrowth = 1.046;  // per-bucket growth factor

  static std::size_t bucketFor(double v) {
    if (v <= kMinValue) return 0;
    const double idx = std::log(v / kMinValue) / std::log(kGrowth);
    return std::min<std::size_t>(kBuckets - 1, static_cast<std::size_t>(idx) + 1);
  }
  static double bucketUpperBound(std::size_t i) {
    return kMinValue * std::pow(kGrowth, static_cast<double>(i));
  }

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace mwsim::stats
