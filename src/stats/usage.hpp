#pragma once

#include <string>
#include <vector>

#include "net/machine.hpp"
#include "sim/time.hpp"

namespace mwsim::stats {

/// Per-machine resource usage over a measurement window — the simulated
/// equivalent of the paper's sysstat sampling.
struct MachineUsage {
  std::string name;
  double cpuUtilization = 0.0;  // fraction of cores busy, 0..1
  double nicMbps = 0.0;         // combined send+receive megabits/s
  double nicUtilization = 0.0;  // fraction of link bandwidth
  std::uint64_t nicPackets = 0;
  std::int64_t memoryBytes = 0;
};

/// Snapshot-differencing usage meter: start() at the beginning of the
/// measurement phase, stop() at the end, then read usage().
class UsageWindow {
 public:
  void addMachine(const net::Machine* machine) { machines_.push_back(machine); }

  void start(sim::SimTime now) {
    startTime_ = now;
    startSnapshots_.clear();
    for (const auto* m : machines_) {
      startSnapshots_.push_back({m->cpu().busyCoreSeconds(), m->nic().busySeconds(),
                                 m->nic().bytesTransferred(), m->nic().packetsTransferred()});
    }
  }

  void stop(sim::SimTime now) {
    stopTime_ = now;
    stopSnapshots_.clear();
    for (const auto* m : machines_) {
      stopSnapshots_.push_back({m->cpu().busyCoreSeconds(), m->nic().busySeconds(),
                                m->nic().bytesTransferred(), m->nic().packetsTransferred()});
    }
  }

  std::vector<MachineUsage> usage() const {
    std::vector<MachineUsage> out;
    const double seconds = sim::toSeconds(stopTime_ - startTime_);
    if (seconds <= 0.0) return out;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      const auto* m = machines_[i];
      const Snapshot& a = startSnapshots_[i];
      const Snapshot& b = stopSnapshots_[i];
      MachineUsage u;
      u.name = m->name();
      u.cpuUtilization = (b.cpuBusy - a.cpuBusy) / (seconds * m->cpu().cores());
      const double bits = static_cast<double>(b.nicBytes - a.nicBytes) * 8.0;
      u.nicMbps = bits / seconds / 1e6;
      u.nicUtilization = bits / seconds / m->nic().bandwidthBitsPerSecond();
      u.nicPackets = b.nicPackets - a.nicPackets;
      u.memoryBytes = m->memoryBytes();
      out.push_back(u);
    }
    return out;
  }

  sim::Duration windowLength() const noexcept { return stopTime_ - startTime_; }

 private:
  struct Snapshot {
    double cpuBusy = 0;
    double nicBusy = 0;
    std::uint64_t nicBytes = 0;
    std::uint64_t nicPackets = 0;
  };

  std::vector<const net::Machine*> machines_;
  std::vector<Snapshot> startSnapshots_;
  std::vector<Snapshot> stopSnapshots_;
  sim::SimTime startTime_ = 0;
  sim::SimTime stopTime_ = 0;
};

}  // namespace mwsim::stats
