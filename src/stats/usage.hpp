#pragma once

#include <string>
#include <vector>

#include "net/machine.hpp"
#include "sim/time.hpp"

namespace mwsim::stats {

/// Per-machine resource usage over a measurement window — the simulated
/// equivalent of the paper's sysstat sampling. Also used (via
/// aggregateByTier) for one row per *tier*, where `name` is the tier name
/// and the figures are combined over the tier's replicas.
struct MachineUsage {
  std::string name;
  std::string tier;             // tier this machine belongs to (default: name)
  int cores = 1;
  double cpuUtilization = 0.0;  // fraction of cores busy, 0..1
  double nicMbps = 0.0;         // combined send+receive megabits/s
  double nicUtilization = 0.0;  // fraction of link bandwidth
  std::uint64_t nicPackets = 0;
  std::int64_t memoryBytes = 0;
};

/// Snapshot-differencing usage meter: start() at the beginning of the
/// measurement phase, stop() at the end, then read usage().
class UsageWindow {
 public:
  /// `tier` groups replicated machines for aggregateByTier; empty means the
  /// machine is its own tier (the single-machine default).
  void addMachine(const net::Machine* machine, std::string tier = {}) {
    machines_.push_back(machine);
    tiers_.push_back(tier.empty() ? machine->name() : std::move(tier));
  }

  void start(sim::SimTime now) {
    startTime_ = now;
    startSnapshots_.clear();
    for (const auto* m : machines_) {
      startSnapshots_.push_back({m->cpu().busyCoreSeconds(), m->nic().busySeconds(),
                                 m->nic().bytesTransferred(), m->nic().packetsTransferred()});
    }
  }

  void stop(sim::SimTime now) {
    stopTime_ = now;
    stopSnapshots_.clear();
    for (const auto* m : machines_) {
      stopSnapshots_.push_back({m->cpu().busyCoreSeconds(), m->nic().busySeconds(),
                                m->nic().bytesTransferred(), m->nic().packetsTransferred()});
    }
  }

  std::vector<MachineUsage> usage() const {
    std::vector<MachineUsage> out;
    const double seconds = sim::toSeconds(stopTime_ - startTime_);
    if (seconds <= 0.0) return out;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      const auto* m = machines_[i];
      const Snapshot& a = startSnapshots_[i];
      const Snapshot& b = stopSnapshots_[i];
      MachineUsage u;
      u.name = m->name();
      u.tier = tiers_[i];
      u.cores = m->cpu().cores();
      u.cpuUtilization = (b.cpuBusy - a.cpuBusy) / (seconds * m->cpu().cores());
      const double bits = static_cast<double>(b.nicBytes - a.nicBytes) * 8.0;
      u.nicMbps = bits / seconds / 1e6;
      u.nicUtilization = bits / seconds / m->nic().bandwidthBitsPerSecond();
      u.nicPackets = b.nicPackets - a.nicPackets;
      u.memoryBytes = m->memoryBytes();
      out.push_back(u);
    }
    return out;
  }

  sim::Duration windowLength() const noexcept { return stopTime_ - startTime_; }

 private:
  struct Snapshot {
    double cpuBusy = 0;
    double nicBusy = 0;
    std::uint64_t nicBytes = 0;
    std::uint64_t nicPackets = 0;
  };

  std::vector<const net::Machine*> machines_;
  std::vector<std::string> tiers_;
  std::vector<Snapshot> startSnapshots_;
  std::vector<Snapshot> stopSnapshots_;
  sim::SimTime startTime_ = 0;
  sim::SimTime stopTime_ = 0;
};

/// Collapses per-instance usage to one row per tier, preserving first-seen
/// tier order. CPU utilization is the core-weighted mean (the tier's busy
/// fraction of its combined cores); NIC utilization is the plain mean over
/// instances (replicas have one link each); traffic, packets and memory sum.
inline std::vector<MachineUsage> aggregateByTier(
    const std::vector<MachineUsage>& perInstance) {
  std::vector<MachineUsage> out;
  std::vector<int> instances;
  for (const MachineUsage& u : perInstance) {
    MachineUsage* t = nullptr;
    std::size_t idx = 0;
    for (; idx < out.size(); ++idx) {
      if (out[idx].tier == u.tier) {
        t = &out[idx];
        break;
      }
    }
    if (t == nullptr) {
      out.emplace_back();
      instances.push_back(0);
      t = &out.back();
      t->name = u.tier;
      t->tier = u.tier;
      t->cores = 0;
      idx = out.size() - 1;
    }
    t->cpuUtilization = (t->cpuUtilization * t->cores + u.cpuUtilization * u.cores) /
                        (t->cores + u.cores);
    t->nicUtilization =
        (t->nicUtilization * instances[idx] + u.nicUtilization) / (instances[idx] + 1);
    t->cores += u.cores;
    t->nicMbps += u.nicMbps;
    t->nicPackets += u.nicPackets;
    t->memoryBytes += u.memoryBytes;
    ++instances[idx];
  }
  return out;
}

}  // namespace mwsim::stats
