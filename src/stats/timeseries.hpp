#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mwsim::stats {

/// Fixed-interval time series of workload outcomes over a whole run — the
/// trajectory a flash-crowd or failover scenario produces, as opposed to the
/// single steady-state point the figure benches report. Purely
/// observational: recording never touches the simulation's random streams
/// or event order, so enabling a series cannot perturb results.
///
/// Buckets cover [i*interval, (i+1)*interval) from t=0 and include the
/// ramp phases on purpose: a scenario's interesting structure (the surge,
/// the crash, the recovery) rarely aligns with the measurement window.
class TimeSeries {
 public:
  struct Bucket {
    std::uint64_t completions = 0;  // interactions finished (incl. errors)
    std::uint64_t errors = 0;       // of which: error pages / failed requests
    std::uint64_t shed = 0;         // open-loop arrivals refused at admission
    double sumResponseSec = 0.0;    // over all completions
    double maxResponseSec = 0.0;

    std::uint64_t ok() const noexcept { return completions - errors; }
    double meanResponseSec() const noexcept {
      return completions == 0 ? 0.0 : sumResponseSec / static_cast<double>(completions);
    }
  };

  explicit TimeSeries(sim::Duration interval) : interval_(interval) {
    assert(interval > 0);
  }

  void recordCompletion(sim::SimTime at, double responseSec, bool error) {
    Bucket& b = bucketAt(at);
    ++b.completions;
    if (error) ++b.errors;
    b.sumResponseSec += responseSec;
    if (responseSec > b.maxResponseSec) b.maxResponseSec = responseSec;
  }

  void recordShed(sim::SimTime at) { ++bucketAt(at).shed; }

  sim::Duration interval() const noexcept { return interval_; }
  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }

  sim::SimTime bucketStart(std::size_t i) const noexcept {
    return static_cast<sim::SimTime>(i) * interval_;
  }

  /// Successful-completion throughput of bucket i, in interactions/minute.
  double okPerMinute(std::size_t i) const {
    return static_cast<double>(buckets_.at(i).ok()) * 60.0 / sim::toSeconds(interval_);
  }

 private:
  Bucket& bucketAt(sim::SimTime at) {
    assert(at >= 0);
    const auto i = static_cast<std::size_t>(at / interval_);
    if (i >= buckets_.size()) buckets_.resize(i + 1);
    return buckets_[i];
  }

  sim::Duration interval_;
  std::vector<Bucket> buckets_;
};

}  // namespace mwsim::stats
