#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/machine.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mwsim::net {

/// Per-link traffic counters (messages, bytes, Ethernet frames).
struct LinkTraffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

/// Switched LAN connecting the server machines and the client farm.
///
/// A transfer serializes through the sender's NIC, crosses the switch
/// (fixed propagation latency), and serializes through the receiver's NIC.
/// The traffic matrix records per-(src,dst) byte/packet counts for the
/// paper's resource-usage observations (e.g. EJB<->DB packet rates).
class Network {
 public:
  explicit Network(sim::Simulation& simulation,
                   sim::Duration propagation = sim::fromMicros(100))
      : sim_(simulation), propagation_(propagation) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `bytes` from one machine to another, blocking the caller for the
  /// full transfer time (the middleware tiers exchange synchronous
  /// request/response messages).
  sim::Task<> send(Machine& from, Machine& to, std::size_t bytes) {
    auto& traffic = matrix_[{from.name(), to.name()}];
    ++traffic.messages;
    traffic.bytes += bytes;
    traffic.packets += Nic::packetsFor(bytes);
    co_await from.nic().transfer(bytes);
    co_await sim_.delay(propagation_, trace::Category::NetTransfer);
    co_await to.nic().transfer(bytes);
  }

  const LinkTraffic& traffic(const Machine& from, const Machine& to) const {
    static const LinkTraffic kEmpty;
    auto it = matrix_.find({from.name(), to.name()});
    return it == matrix_.end() ? kEmpty : it->second;
  }

  /// Combined traffic in both directions between two machines.
  LinkTraffic trafficBetween(const Machine& a, const Machine& b) const {
    const LinkTraffic& ab = traffic(a, b);
    const LinkTraffic& ba = traffic(b, a);
    return {ab.messages + ba.messages, ab.bytes + ba.bytes, ab.packets + ba.packets};
  }

  const std::map<std::pair<std::string, std::string>, LinkTraffic>& matrix() const {
    return matrix_;
  }

 private:
  sim::Simulation& sim_;
  sim::Duration propagation_;
  std::map<std::pair<std::string, std::string>, LinkTraffic> matrix_;
};

}  // namespace mwsim::net
