#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/cpu.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mwsim::net {

/// Network interface modeled as a FIFO serialization link.
///
/// One queue carries both inbound and outbound traffic, matching how the
/// paper reports NIC load (combined Mb/s on a switched 100 Mb/s port). A
/// message occupies the link for bytes*8/bandwidth seconds.
class Nic {
 public:
  Nic(sim::Simulation& simulation, double bitsPerSecond, std::string name)
      : sim_(simulation),
        link_(simulation, 1, name + ".nic", trace::Category::NetTransfer),
        bitsPerSecond_(bitsPerSecond) {}

  /// Occupies the link long enough to serialize `bytes`.
  sim::Task<> transfer(std::size_t bytes) {
    sim::ResourceHold hold = co_await link_.acquire();
    co_await sim_.delay(serializationTime(bytes), trace::Category::NetTransfer);
    bytes_ += bytes;
    packets_ += packetsFor(bytes);
  }

  sim::Duration serializationTime(std::size_t bytes) const {
    return sim::fromSeconds(static_cast<double>(bytes) * 8.0 / bitsPerSecond_ *
                            degrade_);
  }

  /// Scenario hook (LinkDegrade/LinkRestore): multiplies serialization time
  /// for transfers that start after the call; 1.0 is nominal. In-flight
  /// transfers keep the cost they were admitted with — a mid-transfer rate
  /// change would need kernel support for re-timing queued events, and the
  /// startup-cost approximation is standard for flow-level models.
  void setDegradeFactor(double factor) noexcept {
    assert(factor > 0.0);
    degrade_ = factor;
  }
  double degradeFactor() const noexcept { return degrade_; }

  /// Ethernet-frame count for a payload (1460-byte MSS + at least 1 packet).
  static std::uint64_t packetsFor(std::size_t bytes) {
    return bytes == 0 ? 1 : (bytes + 1459) / 1460;
  }

  std::uint64_t bytesTransferred() const noexcept { return bytes_; }
  std::uint64_t packetsTransferred() const noexcept { return packets_; }
  double busySeconds() const noexcept { return link_.busyUnitSeconds(); }
  double bandwidthBitsPerSecond() const noexcept { return bitsPerSecond_; }
  /// Transfers queued behind the link right now (metrics gauge).
  std::size_t queueLength() const noexcept { return link_.queueLength(); }
  /// Nominal bandwidth divided by the degrade factor: what the link can
  /// actually move per second under an active LinkDegrade scenario event.
  double effectiveBitsPerSecond() const noexcept { return bitsPerSecond_ / degrade_; }

 private:
  sim::Simulation& sim_;
  sim::Resource link_;
  double bitsPerSecond_;
  double degrade_ = 1.0;
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
};

/// One server machine: a processor-sharing CPU and a NIC, plus a coarse
/// memory gauge used by the resource-usage reports.
class Machine {
 public:
  /// `cpuScale` scales CPU demands charged to this machine: 1.0 is the
  /// paper's 1.33 GHz Athlon server.
  Machine(sim::Simulation& simulation, std::string name, int cores = 1,
          double nicBitsPerSecond = 100e6, double cpuScale = 1.0)
      : name_(std::move(name)),
        cpu_(simulation, cores, name_ + ".cpu"),
        nic_(simulation, nicBitsPerSecond, name_),
        cpuScale_(cpuScale) {
    // Machine names key the usage and traffic reports; a duplicate would
    // silently alias two machines' records, so it is a hard error.
    simulation.claimName(name_);
  }
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const std::string& name() const noexcept { return name_; }
  sim::CpuResource& cpu() noexcept { return cpu_; }
  const sim::CpuResource& cpu() const noexcept { return cpu_; }
  Nic& nic() noexcept { return nic_; }
  const Nic& nic() const noexcept { return nic_; }

  /// Charges `work` ns of CPU demand, scaled by this machine's speed.
  sim::Task<> compute(sim::Duration work) {
    co_await cpu_.consume(static_cast<sim::Duration>(work / cpuScale_));
  }

  void addMemory(std::int64_t bytes) noexcept { memoryBytes_ += bytes; }
  std::int64_t memoryBytes() const noexcept { return memoryBytes_; }

  /// Scenario hook (ReplicaCrash/ReplicaRecover). A "down" machine's
  /// resources keep running in virtual time — there is no kernel-level
  /// preemption — but going down bumps the epoch, and request paths that
  /// support failover (WebServer::serve) compare epochs at their scheduling
  /// checkpoints and unwind with ReplicaDown. Recovery does not bump the
  /// epoch: requests admitted after recovery run on the new epoch.
  void setUp(bool up) noexcept {
    if (up_ == up) return;
    up_ = up;
    if (!up) ++epoch_;
  }
  bool up() const noexcept { return up_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::string name_;
  sim::CpuResource cpu_;
  Nic nic_;
  double cpuScale_;
  std::int64_t memoryBytes_ = 0;
  bool up_ = true;
  std::uint64_t epoch_ = 0;
};

}  // namespace mwsim::net
