#pragma once

#include <map>
#include <string>

#include "middleware/web_server.hpp"
#include "obs/metrics.hpp"
#include "stats/histogram.hpp"
#include "stats/timeseries.hpp"
#include "trace/collector.hpp"
#include "trace/scope.hpp"
#include "workload/mix.hpp"

namespace mwsim::wl {

/// Workload counters, recorded only while `measuring` is on (the paper's
/// measurement phase between ramp-up and ramp-down). The optional time
/// series, by contrast, covers the whole run: a scenario's structure (the
/// surge, the crash, the recovery) rarely aligns with the measurement
/// window.
struct WorkloadStats {
  bool measuring = false;
  std::uint64_t completedInteractions = 0;
  std::uint64_t completedReadWrite = 0;
  std::uint64_t totalQueries = 0;
  std::uint64_t totalResponseBytes = 0;
  std::uint64_t errorInteractions = 0;
  std::map<std::string, std::uint64_t> perInteraction;
  stats::Histogram responseSeconds;
  /// When non-null, every completion lands in a fixed-interval bucket too.
  stats::TimeSeries* series = nullptr;
  /// When non-null, measured response times also land in this metrics
  /// instrument (summarized into the MetricsReport).
  obs::HistogramInstrument* responseHist = nullptr;

  void record(const std::string& interaction, bool readWrite, double responseSecs,
              const mw::InteractionResult& result, sim::SimTime now) {
    if (series != nullptr) {
      series->recordCompletion(now, responseSecs, result.page.error);
    }
    if (!measuring) return;
    ++completedInteractions;
    if (readWrite) ++completedReadWrite;
    if (result.page.error) ++errorInteractions;
    totalQueries += static_cast<std::uint64_t>(result.page.queryCount);
    totalResponseBytes += result.totalResponseBytes;
    ++perInteraction[interaction];
    responseSeconds.record(responseSecs);
    if constexpr (obs::kEnabled) {
      if (responseHist != nullptr) responseHist->record(responseSecs);
    }
  }
};

/// Closed-loop client-browser emulator (paper §4.1): each of `clientCount`
/// emulated browsers runs back-to-back sessions; within a session it walks
/// the mix's Markov chain with exponentially distributed think times
/// (mean 7 s) and session lengths (mean 15 min), per TPC-W clauses
/// 5.3.1.1 / 6.2.1.2.
class ClientFarm {
 public:
  /// `collector`, when non-null and enabled, receives a span tree for every
  /// interaction that starts and completes inside the measurement window.
  ClientFarm(sim::Simulation& simulation, mw::HttpService& webServer, const MixMatrix& mix,
             int clientCount, WorkloadStats& stats, std::uint64_t seed,
             sim::Duration thinkMean = 7 * sim::kSecond,
             sim::Duration sessionMean = 15 * sim::kMinute,
             trace::Collector* collector = nullptr)
      : sim_(simulation), web_(webServer), mix_(mix), clients_(clientCount), stats_(stats),
        seed_(seed), thinkMean_(thinkMean), sessionMean_(sessionMean),
        collector_(collector) {}

  /// Spawns every client process. Clients stagger their starts over one
  /// think time so arrivals do not all align at t=0.
  void start() {
    for (int c = 0; c < clients_; ++c) {
      sim_.spawn(clientLoop(c));
    }
  }

 private:
  sim::Task<> clientLoop(int clientId) {
    sim::Rng rng(sim::deriveSeed(seed_, 0xC11E27ULL + static_cast<std::uint64_t>(clientId)));
    co_await sim_.delay(sim::fromSeconds(
        rng.uniformReal(0.0, sim::toSeconds(thinkMean_))));
    for (;;) {  // back-to-back sessions
      mw::ClientSession session;
      std::size_t state = mix_.initialState();
      const sim::SimTime sessionEnd =
          sim_.now() + sim::fromSeconds(rng.exponential(sim::toSeconds(sessionMean_)));
      while (sim_.now() < sessionEnd) {
        mw::Request request{mix_.stateName(state), &session};
        const sim::SimTime start = sim_.now();
        mw::InteractionResult result{};
        // Tracing must not perturb the simulation: the traced path differs
        // only in observing virtual time, never in what it awaits.
        const bool traced = trace::kEnabled && collector_ != nullptr &&
                            collector_->enabled() && collector_->measuring();
        if (traced) {
          trace::Trace trace(request.interaction, clientId);
          {
            trace::SpanScope rootSpan(sim_, &trace, "interaction");
            result = co_await web_.serve(request);
          }
          // add() drops the trace if the measurement window closed while
          // the interaction was in flight, keeping aggregates in-window.
          collector_->add(std::move(trace));
        } else {
          result = co_await web_.serve(request);
        }
        stats_.record(request.interaction, mix_.isReadWrite(state),
                      sim::toSeconds(sim_.now() - start), result, sim_.now());
        co_await sim_.delay(
            sim::fromSeconds(rng.exponential(sim::toSeconds(thinkMean_))));
        state = mix_.next(state, rng);
      }
    }
  }

  sim::Simulation& sim_;
  mw::HttpService& web_;
  const MixMatrix& mix_;
  int clients_;
  WorkloadStats& stats_;
  std::uint64_t seed_;
  sim::Duration thinkMean_;
  sim::Duration sessionMean_;
  trace::Collector* collector_ = nullptr;
};

}  // namespace mwsim::wl
