#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "scenario/arrival.hpp"
#include "scenario/spec.hpp"
#include "workload/client.hpp"

namespace mwsim::wl {

/// Open-loop session generator: sessions arrive by a (possibly
/// non-homogeneous) Poisson process following the scenario's RateSchedule,
/// independent of how the system keeps up — the load shape a flash crowd
/// actually presents, as opposed to the closed loop's self-throttling
/// population.
///
/// Each arriving session walks the same Markov mix as a closed-loop client:
/// it starts at the mix's initial state, continues after each successful
/// interaction with probability `continueProb` (think time in between), and
/// abandons on an error page. Admission control caps concurrently active
/// sessions at `maxInFlightSessions`; arrivals beyond the cap are shed and
/// counted (overload degrades by refusing work, not by accumulating
/// unbounded session state).
class OpenLoopFarm {
 public:
  OpenLoopFarm(sim::Simulation& simulation, mw::HttpService& webServer,
               const MixMatrix& mix, const scenario::Spec& spec, WorkloadStats& stats,
               std::uint64_t seed, trace::Collector* collector = nullptr)
      : sim_(simulation), web_(webServer), mix_(mix), spec_(spec),
        process_(spec.arrivals), stats_(stats), seed_(seed), collector_(collector) {}

  /// Spawns the arrival driver process.
  void start() { sim_.spawn(arrivalLoop()); }

  /// Sessions offered by the arrival process (admitted + shed).
  std::uint64_t arrivals() const noexcept { return arrivals_; }
  /// Arrivals refused by admission control.
  std::uint64_t shedSessions() const noexcept { return shed_; }
  /// Sessions currently active.
  int activeSessions() const noexcept { return active_; }

 private:
  sim::Task<> arrivalLoop() {
    sim::Rng rng(sim::deriveSeed(seed_, 0xA221A1ULL));
    double tSec = sim::toSeconds(sim_.now());
    for (;;) {
      const double nextSec = process_.next(tSec, rng);
      if (nextSec < 0.0) co_return;  // schedule exhausted
      tSec = nextSec;
      const sim::Duration wait = sim::fromSeconds(nextSec) - sim_.now();
      if (wait > 0) co_await sim_.delay(wait);
      ++arrivals_;
      if constexpr (obs::kEnabled) {
        if (auto* m = sim_.metrics()) m->openArrivals.add(1);
      }
      if (active_ >= spec_.maxInFlightSessions) {
        ++shed_;
        if constexpr (obs::kEnabled) {
          if (auto* m = sim_.metrics()) m->shedSessions.add(1);
        }
        if (stats_.series != nullptr) stats_.series->recordShed(sim_.now());
        continue;
      }
      ++active_;
      sim_.spawn(sessionLoop(nextSessionId_++));
    }
  }

  sim::Task<> sessionLoop(std::uint64_t sessionId) {
    sim::Rng rng(sim::deriveSeed(seed_, 0x0BE25ULL + sessionId));
    mw::ClientSession session;
    std::size_t state = mix_.initialState();
    for (;;) {
      mw::Request request{mix_.stateName(state), &session};
      const sim::SimTime start = sim_.now();
      mw::InteractionResult result{};
      // Same traced/untraced split as ClientFarm: tracing only observes.
      const bool traced = trace::kEnabled && collector_ != nullptr &&
                          collector_->enabled() && collector_->measuring();
      if (traced) {
        trace::Trace trace(request.interaction, static_cast<int>(sessionId));
        {
          trace::SpanScope rootSpan(sim_, &trace, "interaction");
          result = co_await web_.serve(request);
        }
        collector_->add(std::move(trace));
      } else {
        result = co_await web_.serve(request);
      }
      stats_.record(request.interaction, mix_.isReadWrite(state),
                    sim::toSeconds(sim_.now() - start), result, sim_.now());
      // An error page ends the session — the user gives up. This is what
      // lets overload shed load open-loop: failed sessions leave instead of
      // hammering the site from inside the admission cap.
      if (result.page.error) break;
      if (!rng.bernoulli(spec_.continueProb)) break;
      co_await sim_.delay(sim::fromSeconds(
          rng.exponential(sim::toSeconds(spec_.openThinkMean))));
      state = mix_.next(state, rng);
    }
    --active_;
  }

  sim::Simulation& sim_;
  mw::HttpService& web_;
  const MixMatrix& mix_;
  const scenario::Spec& spec_;
  scenario::ArrivalProcess process_;
  WorkloadStats& stats_;
  std::uint64_t seed_;
  trace::Collector* collector_ = nullptr;
  std::uint64_t arrivals_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t nextSessionId_ = 0;
  int active_ = 0;
};

}  // namespace mwsim::wl
