#include "workload/mix.hpp"

#include <numeric>
#include <stdexcept>

namespace mwsim::wl {

std::vector<double> MixMatrix::stationaryDistribution(int iterations) const {
  const std::size_t n = states_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  // Row sums may not be exactly 1; normalize on the fly.
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double rowSum = std::accumulate(rows_[i].begin(), rows_[i].end(), 0.0);
      if (rowSum <= 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        next[j] += pi[i] * rows_[i][j] / rowSum;
      }
    }
    pi.swap(next);
  }
  return pi;
}

double MixMatrix::readWriteFraction() const {
  const auto pi = stationaryDistribution();
  double rw = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (readWrite_[i]) rw += pi[i];
  }
  return rw;
}

std::size_t MixBuilder::index(const std::string& state) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == state) return i;
  }
  throw std::runtime_error("unknown interaction state: " + state);
}

MixMatrix MixBuilder::build(std::size_t initialState) const {
  const std::size_t n = states_.size();
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  std::vector<std::vector<double>> rows(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    // Base row: the occurrence distribution (random-surfer model).
    double overridden = 0.0;
    std::vector<bool> isOverride(n, false);
    for (const auto& o : overrides_) {
      if (o.from == i) {
        rows[i][o.to] += o.prob;
        overridden += o.prob;
        isOverride[o.to] = true;
      }
    }
    if (overridden > 1.0) throw std::runtime_error("overrides exceed probability 1");
    const double remaining = 1.0 - overridden;
    double freeWeight = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!isOverride[j]) freeWeight += weights_[j];
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!isOverride[j] && freeWeight > 0) {
        rows[i][j] += remaining * weights_[j] / freeWeight;
      }
    }
    (void)total;
  }
  return MixMatrix(name_, states_, std::move(rows), readWrite_, initialState);
}

}  // namespace mwsim::wl
