#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace mwsim::wl {

/// Markov state-transition matrix over interaction names — the client
/// emulator picks the next interaction from the row of the current one
/// (paper §4.1: "the next interaction is determined by a state transition
/// matrix").
class MixMatrix {
 public:
  MixMatrix(std::string name, std::vector<std::string> states,
            std::vector<std::vector<double>> rows, std::vector<bool> readWrite,
            std::size_t initialState = 0)
      : name_(std::move(name)), states_(std::move(states)), rows_(std::move(rows)),
        readWrite_(std::move(readWrite)), initial_(initialState) {
    assert(rows_.size() == states_.size());
    assert(readWrite_.size() == states_.size());
    for (const auto& row : rows_) {
      assert(row.size() == states_.size());
      (void)row;
    }
  }

  const std::string& name() const noexcept { return name_; }
  std::size_t stateCount() const noexcept { return states_.size(); }
  std::size_t initialState() const noexcept { return initial_; }
  const std::string& stateName(std::size_t s) const { return states_.at(s); }
  bool isReadWrite(std::size_t s) const { return readWrite_.at(s); }

  std::size_t next(std::size_t current, sim::Rng& rng) const {
    return rng.discrete(std::span<const double>(rows_.at(current)));
  }

  /// Stationary distribution of the chain (power iteration) — used by tests
  /// to verify the documented read-write fractions.
  std::vector<double> stationaryDistribution(int iterations = 2000) const;

  /// Long-run fraction of read-write interactions.
  double readWriteFraction() const;

 private:
  std::string name_;
  std::vector<std::string> states_;
  std::vector<std::vector<double>> rows_;
  std::vector<bool> readWrite_;
  std::size_t initial_;
};

/// Builds a Markov matrix whose stationary distribution approximates the
/// given per-interaction occurrence weights, with optional structural
/// overrides ("after state A, go to B with probability p, remainder split
/// per the base weights"). This mirrors how we encode the TPC-W/RUBiS
/// mixes: the spec documents occurrence rates and navigation structure but
/// the paper does not print its exact matrices (see DESIGN.md).
class MixBuilder {
 public:
  MixBuilder(std::string name, std::vector<std::string> states,
             std::vector<double> occurrenceWeights, std::vector<bool> readWrite)
      : name_(std::move(name)), states_(std::move(states)),
        weights_(std::move(occurrenceWeights)), readWrite_(std::move(readWrite)) {
    assert(weights_.size() == states_.size());
  }

  /// Forces `prob` of the transitions out of `from` to land on `to`.
  MixBuilder& follow(const std::string& from, const std::string& to, double prob) {
    overrides_.push_back({index(from), index(to), prob});
    return *this;
  }

  MixMatrix build(std::size_t initialState = 0) const;

  std::size_t index(const std::string& state) const;

 private:
  struct Override {
    std::size_t from;
    std::size_t to;
    double prob;
  };
  std::string name_;
  std::vector<std::string> states_;
  std::vector<double> weights_;
  std::vector<bool> readWrite_;
  std::vector<Override> overrides_;
};

}  // namespace mwsim::wl
