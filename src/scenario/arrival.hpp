#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"

namespace mwsim::scenario {

/// Piecewise-linear arrival-rate schedule: rate(t) interpolates between
/// (time, rate) knots, and is constant before the first knot and after the
/// last. A single knot (or the constant() factory) is a flat rate — the
/// plain Poisson case. Rates are arrivals per second of virtual time.
///
/// Three ways to build one, matching the paper-adjacent load shapes:
///   * constant(r)            — steady open-loop traffic;
///   * flashCrowd()/diurnal() — the surge and day-cycle shapes;
///   * fromFile()/fromString()— trace-driven rates ("timeSec rate" lines).
class RateSchedule {
 public:
  struct Knot {
    double timeSec = 0.0;
    double rate = 0.0;  // arrivals per second at this instant
  };

  RateSchedule() = default;

  static RateSchedule constant(double rate);
  /// Knots must be non-decreasing in time; rates must be non-negative.
  /// Throws std::invalid_argument otherwise.
  static RateSchedule piecewise(std::vector<Knot> knots);

  /// Base rate until `surgeStartSec`, then a linear ramp over `rampSec` to
  /// surgeMultiplier × base, held for `holdSec`, then a linear decay over
  /// `decaySec` back to base (constant afterwards).
  static RateSchedule flashCrowd(double baseRate, double surgeMultiplier,
                                 double surgeStartSec, double rampSec, double holdSec,
                                 double decaySec);

  /// Sinusoidal day cycle sampled at `knotsPerPeriod` points per period over
  /// `horizonSec`: rate(t) = meanRate * (1 + amplitude * sin(2πt/period)),
  /// with amplitude in [0, 1] (1 swings between 0 and 2× the mean).
  static RateSchedule diurnal(double meanRate, double amplitude, double periodSec,
                              double horizonSec, int knotsPerPeriod = 24);

  /// Trace-driven rates: one "timeSec rate" pair per line, '#' comments and
  /// blank lines ignored. Throws std::invalid_argument on parse errors or an
  /// unreadable file.
  static RateSchedule fromFile(const std::string& path);
  static RateSchedule fromString(std::string_view text);

  /// Arrival rate at time t (seconds). Empty schedules have rate 0.
  double rate(double tSec) const;

  /// The schedule's supremum rate — the thinning envelope.
  double maxRate() const;

  /// Rate after the last knot (0 for an empty schedule). A zero tail means
  /// the process is exhausted once past the last knot.
  double tailRate() const {
    return knots_.empty() ? 0.0 : knots_.back().rate;
  }
  double lastKnotSec() const { return knots_.empty() ? 0.0 : knots_.back().timeSec; }

  bool empty() const noexcept { return knots_.empty(); }
  const std::vector<Knot>& knots() const noexcept { return knots_; }

  /// Order- and value-sensitive hash over the knots, for scenario seed
  /// coordinates (see Spec::seedTag).
  std::uint64_t hash() const;

 private:
  std::vector<Knot> knots_;
};

/// Open-loop arrival process: a (possibly non-homogeneous) Poisson process
/// whose instantaneous rate follows a RateSchedule. Sampling uses
/// Lewis–Shedler thinning against the schedule's max rate, so the sequence
/// is a deterministic function of (schedule, rng stream) — the same seed
/// always produces the same arrival times.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(RateSchedule schedule) : schedule_(std::move(schedule)) {}

  /// Next arrival time strictly after `afterSec`, or a negative value when
  /// the process is exhausted (zero rate everywhere, or past the last knot
  /// of a schedule with a zero tail rate).
  double next(double afterSec, sim::Rng& rng) const;

  const RateSchedule& schedule() const noexcept { return schedule_; }

 private:
  RateSchedule schedule_;
};

}  // namespace mwsim::scenario
