#pragma once

#include <vector>

#include "scenario/events.hpp"

namespace mwsim::net {
class Machine;
}
namespace mwsim::mw {
class LoadBalancer;
}
namespace mwsim::sim {
class Simulation;
}

namespace mwsim::scenario {

/// Where platform events land: the experiment's machines grouped by tier,
/// plus the load balancer whose health view crash/recover events update.
/// Tiers that do not exist in the current configuration are simply empty.
struct PlatformHooks {
  std::vector<net::Machine*> web;
  std::vector<net::Machine*> servlet;
  std::vector<net::Machine*> ejb;
  std::vector<net::Machine*> db;
  mw::LoadBalancer* balancer = nullptr;

  const std::vector<net::Machine*>& tier(Tier t) const;
};

/// Executes a sorted list of platform events at their virtual times, from a
/// single spawned driver process. Failure semantics (also in DESIGN.md §13):
///
///  * ReplicaCrash marks the machine down and bumps its epoch. The
///    machine's resources keep running in virtual time; every in-flight
///    request notices the epoch change at its next scheduling checkpoint in
///    the web tier and unwinds with ReplicaDown, which the load balancer
///    turns into a reroute. The balancer's health view is updated in the
///    same instant, so no new requests are dispatched to the dead replica.
///  * ReplicaRecover marks the machine up again and restores its health.
///  * LinkDegrade multiplies the machine's NIC serialization time by
///    `factor` for transfers that start after the event; LinkRestore
///    returns it to nominal.
///
/// Crash/recover is modeled for the web tier only (the balancer is the
/// failover point); link events apply to any tier.
class Timeline {
 public:
  /// Events are stably sorted by time: same-instant events apply in the
  /// order given.
  explicit Timeline(std::vector<Event> events);

  /// Checks every event against the hooks (tier exists, replica in range,
  /// crash targets have a balancer to reroute through, degrade factors
  /// positive). Throws std::invalid_argument naming the offending event.
  void validate(const PlatformHooks& hooks) const;

  /// Validates, then spawns the driver process that applies each event at
  /// its virtual time. Call before the run starts.
  void install(sim::Simulation& sim, PlatformHooks hooks);

  const std::vector<Event>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<Event> events_;
};

}  // namespace mwsim::scenario
