#include "scenario/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace mwsim::scenario {

namespace {

void checkKnots(const std::vector<RateSchedule::Knot>& knots) {
  for (std::size_t i = 0; i < knots.size(); ++i) {
    if (!(knots[i].rate >= 0.0) || !std::isfinite(knots[i].rate)) {
      throw std::invalid_argument("rate schedule: rates must be finite and >= 0");
    }
    if (!std::isfinite(knots[i].timeSec)) {
      throw std::invalid_argument("rate schedule: knot times must be finite");
    }
    if (i > 0 && knots[i].timeSec < knots[i - 1].timeSec) {
      throw std::invalid_argument("rate schedule: knot times must be non-decreasing");
    }
  }
}

}  // namespace

RateSchedule RateSchedule::constant(double rate) {
  return piecewise({Knot{0.0, rate}});
}

RateSchedule RateSchedule::piecewise(std::vector<Knot> knots) {
  checkKnots(knots);
  RateSchedule s;
  s.knots_ = std::move(knots);
  return s;
}

RateSchedule RateSchedule::flashCrowd(double baseRate, double surgeMultiplier,
                                      double surgeStartSec, double rampSec,
                                      double holdSec, double decaySec) {
  if (baseRate < 0 || surgeMultiplier < 0) {
    throw std::invalid_argument("flash crowd: rates must be >= 0");
  }
  const double peak = baseRate * surgeMultiplier;
  const double t0 = surgeStartSec;
  return piecewise({{0.0, baseRate},
                    {t0, baseRate},
                    {t0 + rampSec, peak},
                    {t0 + rampSec + holdSec, peak},
                    {t0 + rampSec + holdSec + decaySec, baseRate}});
}

RateSchedule RateSchedule::diurnal(double meanRate, double amplitude, double periodSec,
                                   double horizonSec, int knotsPerPeriod) {
  if (meanRate < 0 || amplitude < 0 || amplitude > 1) {
    throw std::invalid_argument("diurnal: need meanRate >= 0 and amplitude in [0, 1]");
  }
  if (periodSec <= 0 || horizonSec <= 0 || knotsPerPeriod < 2) {
    throw std::invalid_argument("diurnal: need positive period/horizon, >= 2 knots");
  }
  std::vector<Knot> knots;
  const double step = periodSec / knotsPerPeriod;
  for (double t = 0.0; t <= horizonSec; t += step) {
    const double phase = 2.0 * 3.14159265358979323846 * t / periodSec;
    knots.push_back({t, meanRate * (1.0 + amplitude * std::sin(phase))});
  }
  return piecewise(std::move(knots));
}

RateSchedule RateSchedule::fromString(std::string_view text) {
  std::vector<Knot> knots;
  std::size_t pos = 0;
  int lineNo = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Knot k;
    char trailing = 0;
    if (std::sscanf(line.c_str(), "%lf %lf %c", &k.timeSec, &k.rate, &trailing) != 2) {
      throw std::invalid_argument("rate trace line " + std::to_string(lineNo) +
                                  ": expected \"timeSec rate\", got \"" + line + "\"");
    }
    knots.push_back(k);
  }
  if (knots.empty()) {
    throw std::invalid_argument("rate trace: no knots found");
  }
  return piecewise(std::move(knots));
}

RateSchedule RateSchedule::fromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    throw std::invalid_argument("rate trace: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return fromString(text);
}

double RateSchedule::rate(double tSec) const {
  if (knots_.empty()) return 0.0;
  if (tSec <= knots_.front().timeSec) return knots_.front().rate;
  if (tSec >= knots_.back().timeSec) return knots_.back().rate;
  // First knot strictly after t; interpolate from its predecessor.
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), tSec,
      [](double t, const Knot& k) { return t < k.timeSec; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double span = hi.timeSec - lo.timeSec;
  if (span <= 0.0) return hi.rate;  // vertical step: the later knot wins
  const double f = (tSec - lo.timeSec) / span;
  return lo.rate + f * (hi.rate - lo.rate);
}

double RateSchedule::maxRate() const {
  double m = 0.0;
  for (const Knot& k : knots_) m = std::max(m, k.rate);
  return m;
}

std::uint64_t RateSchedule::hash() const {
  std::uint64_t h = sim::deriveSeed(0x5C4EDULL, knots_.size());
  for (const Knot& k : knots_) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof k.timeSec);
    std::memcpy(&bits, &k.timeSec, sizeof bits);
    h = sim::deriveSeed(h, bits);
    std::memcpy(&bits, &k.rate, sizeof bits);
    h = sim::deriveSeed(h, bits);
  }
  return h;
}

double ArrivalProcess::next(double afterSec, sim::Rng& rng) const {
  const double envelope = schedule_.maxRate();
  if (envelope <= 0.0) return -1.0;
  double t = afterSec;
  for (;;) {
    // Once past the last knot of a zero-tail schedule no candidate can ever
    // be accepted; report exhaustion instead of spinning.
    if (t >= schedule_.lastKnotSec() && schedule_.tailRate() <= 0.0) return -1.0;
    t += rng.exponential(1.0 / envelope);
    if (rng.uniformReal(0.0, envelope) < schedule_.rate(t)) return t;
  }
}

}  // namespace mwsim::scenario
