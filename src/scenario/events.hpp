#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace mwsim::scenario {

/// The tier a platform event targets. Matches the experiment's tier layout
/// (core::Topology): replica indices are 0-based within the tier.
enum class Tier : std::uint8_t { Web, Servlet, Ejb, Db };

inline const char* tierName(Tier t) {
  switch (t) {
    case Tier::Web: return "web";
    case Tier::Servlet: return "servlet";
    case Tier::Ejb: return "ejb";
    case Tier::Db: return "db";
  }
  return "?";
}

/// Typed platform events, scheduled at virtual times — the "dynamic
/// scenario" inputs: machines fail and recover, links degrade and restore,
/// all mid-run.
enum class EventKind : std::uint8_t {
  ReplicaCrash,    // machine goes down: in-flight work is dropped at its
                   // next scheduling point, the load balancer routes around
  ReplicaRecover,  // machine comes back and rejoins dispatch
  LinkDegrade,     // the machine's NIC slows by `factor` (2 = half speed)
  LinkRestore,     // NIC back to nominal speed
};

inline const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::ReplicaCrash: return "replica-crash";
    case EventKind::ReplicaRecover: return "replica-recover";
    case EventKind::LinkDegrade: return "link-degrade";
    case EventKind::LinkRestore: return "link-restore";
  }
  return "?";
}

struct Event {
  sim::SimTime at = 0;  // virtual time the event fires
  EventKind kind = EventKind::ReplicaCrash;
  Tier tier = Tier::Web;
  int replica = 0;       // 0-based index within the tier
  double factor = 1.0;   // LinkDegrade only: serialization slowdown, > 1

  std::string summary() const {
    std::string s = std::string(eventKindName(kind)) + " " + tierName(tier) + "[" +
                    std::to_string(replica) + "] @" +
                    std::to_string(sim::toSeconds(at)) + "s";
    if (kind == EventKind::LinkDegrade) s += " x" + std::to_string(factor);
    return s;
  }
};

inline Event replicaCrash(sim::SimTime at, Tier tier, int replica) {
  return Event{at, EventKind::ReplicaCrash, tier, replica, 1.0};
}
inline Event replicaRecover(sim::SimTime at, Tier tier, int replica) {
  return Event{at, EventKind::ReplicaRecover, tier, replica, 1.0};
}
inline Event linkDegrade(sim::SimTime at, Tier tier, int replica, double factor) {
  return Event{at, EventKind::LinkDegrade, tier, replica, factor};
}
inline Event linkRestore(sim::SimTime at, Tier tier, int replica) {
  return Event{at, EventKind::LinkRestore, tier, replica, 1.0};
}

}  // namespace mwsim::scenario
