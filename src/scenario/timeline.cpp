#include "scenario/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "middleware/dispatch.hpp"
#include "net/machine.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace mwsim::scenario {

const std::vector<net::Machine*>& PlatformHooks::tier(Tier t) const {
  switch (t) {
    case Tier::Web: return web;
    case Tier::Servlet: return servlet;
    case Tier::Ejb: return ejb;
    case Tier::Db: return db;
  }
  return web;  // unreachable
}

Timeline::Timeline(std::vector<Event> events) : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
}

void Timeline::validate(const PlatformHooks& hooks) const {
  for (const Event& e : events_) {
    if (e.at < 0) {
      throw std::invalid_argument("scenario event before t=0: " + e.summary());
    }
    const auto& machines = hooks.tier(e.tier);
    if (e.replica < 0 || static_cast<std::size_t>(e.replica) >= machines.size()) {
      throw std::invalid_argument(
          "scenario event targets a replica outside the topology (tier has " +
          std::to_string(machines.size()) + " replicas): " + e.summary());
    }
    switch (e.kind) {
      case EventKind::ReplicaCrash:
      case EventKind::ReplicaRecover:
        // Crash/recover is a web-tier failover experiment: the load
        // balancer is the component that routes around the failure. Inner
        // tiers have no reroute point yet, so failing them would deadlock
        // requests rather than model anything.
        if (e.tier != Tier::Web) {
          throw std::invalid_argument(
              "crash/recover is modeled for the web tier only: " + e.summary());
        }
        if (hooks.balancer == nullptr) {
          throw std::invalid_argument(
              "crash/recover needs a load balancer to reroute through "
              "(experiment wiring provides one whenever a scenario has events): " +
              e.summary());
        }
        break;
      case EventKind::LinkDegrade:
        if (!(e.factor > 0.0) || !std::isfinite(e.factor)) {
          throw std::invalid_argument("link-degrade factor must be finite and > 0: " +
                                      e.summary());
        }
        break;
      case EventKind::LinkRestore:
        break;
    }
  }
}

namespace {

void apply(const Event& e, PlatformHooks& hooks) {
  net::Machine& machine = *hooks.tier(e.tier)[static_cast<std::size_t>(e.replica)];
  switch (e.kind) {
    case EventKind::ReplicaCrash:
      machine.setUp(false);
      hooks.balancer->setHealthy(static_cast<std::size_t>(e.replica), false);
      break;
    case EventKind::ReplicaRecover:
      machine.setUp(true);
      hooks.balancer->setHealthy(static_cast<std::size_t>(e.replica), true);
      break;
    case EventKind::LinkDegrade:
      machine.nic().setDegradeFactor(e.factor);
      break;
    case EventKind::LinkRestore:
      machine.nic().setDegradeFactor(1.0);
      break;
  }
}

sim::Task<> driver(sim::Simulation& sim, const std::vector<Event>& events,
                   PlatformHooks hooks) {
  for (const Event& e : events) {
    const sim::Duration wait = e.at - sim.now();
    if (wait > 0) co_await sim.delay(wait);
    apply(e, hooks);
  }
}

}  // namespace

void Timeline::install(sim::Simulation& sim, PlatformHooks hooks) {
  if (events_.empty()) return;
  validate(hooks);
  // events_ outlives the run (the Timeline lives in the experiment frame),
  // so the driver can reference it directly.
  sim.spawn(driver(sim, events_, std::move(hooks)));
}

}  // namespace mwsim::scenario
