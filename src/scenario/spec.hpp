#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "scenario/arrival.hpp"
#include "scenario/events.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace mwsim::scenario {

/// How client load is offered to the system under test.
enum class ArrivalMode : std::uint8_t {
  ClosedLoop,  // fixed population of emulated browsers (the paper's model)
  OpenLoop,    // sessions arrive by a Poisson process with a RateSchedule
};

namespace detail {
inline std::uint64_t hashBits(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return sim::deriveSeed(h, bits);
}
}  // namespace detail

/// Everything that turns a steady-state run into a scripted scenario:
/// the arrival mode (and its rate schedule), failover handling, and the
/// platform event timeline. A default-constructed Spec is "scenario off"
/// and leaves runs byte-identical to the pre-scenario simulator.
struct Spec {
  ArrivalMode mode = ArrivalMode::ClosedLoop;

  /// Open-loop only: session arrival rate over time (sessions per second).
  RateSchedule arrivals;
  /// Open-loop only: probability a session continues after each successful
  /// interaction (0.9 ~= 10 interactions per session).
  double continueProb = 0.9;
  /// Open-loop only: mean think time between a session's interactions.
  sim::Duration openThinkMean = 7 * sim::kSecond;
  /// Open-loop only: admission-control cap on concurrently active sessions.
  /// Arrivals beyond the cap are shed (counted, not queued) — overload
  /// degrades by refusing work instead of accumulating unbounded state.
  int maxInFlightSessions = 10000;

  /// Per-request deadline enforced by the load balancer (0 = none). Checked
  /// at the web tier's scheduling checkpoints, like crash detection.
  sim::Duration requestTimeout = 0;
  /// Reroute attempts after a replica dies under a request.
  int requestRetries = 2;

  /// Platform events (crash/recover/degrade/restore) at virtual times.
  std::vector<Event> events;

  /// Bucket width for the run's stats::TimeSeries (0 = no series). Purely
  /// observational — excluded from seedTag(), so turning the series on or
  /// off never changes simulated behavior.
  sim::Duration seriesInterval = 0;

  bool openLoop() const noexcept { return mode == ArrivalMode::OpenLoop; }

  /// True when requests need failover handling (timeout/retry/reroute), in
  /// which case the experiment fronts the web tier with a LoadBalancer even
  /// for a single replica.
  bool needsFailover() const noexcept {
    return !events.empty() || requestTimeout > 0;
  }

  /// True when the spec changes simulated behavior at all.
  bool active() const noexcept { return openLoop() || needsFailover(); }

  /// Hash of every behavior-affecting field. Fields that are inert in the
  /// current mode (e.g. the retry budget with no events and no timeout) are
  /// excluded, so specs that behave identically hash identically.
  std::uint64_t behaviorHash() const {
    std::uint64_t h = sim::deriveSeed(0x5CE11A210ULL, static_cast<std::uint64_t>(mode));
    if (openLoop()) {
      h = sim::deriveSeed(h, arrivals.hash());
      h = detail::hashBits(h, continueProb);
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(openThinkMean));
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(maxInFlightSessions));
    }
    if (needsFailover()) {
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(requestTimeout));
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(requestRetries));
    }
    h = sim::deriveSeed(h, events.size());
    for (const Event& e : events) {
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(e.at));
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(e.kind));
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(e.tier));
      h = sim::deriveSeed(h, static_cast<std::uint64_t>(e.replica));
      h = detail::hashBits(h, e.factor);
    }
    return h;
  }

  /// Seed coordinate for pointSeed: 0 for any spec that behaves like
  /// "scenario off" (keeping every existing sweep's seeds — and therefore
  /// results — bit-identical), and a behavior hash otherwise so open-loop
  /// or failure sweeps are not seed-correlated with closed-loop sweeps at
  /// equal (app, mix, config, clients).
  std::uint64_t seedTag() const {
    static const std::uint64_t kOff = Spec{}.behaviorHash();
    const std::uint64_t h = behaviorHash();
    return h == kOff ? 0 : h;
  }
};

}  // namespace mwsim::scenario
