#pragma once

#include "sim/simulation.hpp"
#include "trace/span.hpp"

namespace mwsim::trace {

/// RAII span guard for one tier of a request's journey.
///
/// Construction opens a span and makes it the simulation's current span;
/// destruction closes it (stamps `end`) and restores the parent. Scopes live
/// in coroutine frames, so they nest in LIFO order along each request's
/// coroutine chain; the simulation primitives keep the current span correct
/// across suspensions by capturing it at suspend and restoring it at resume.
///
/// The child-scope form is a no-op when no traced request is running (the
/// ambient current span is null), so instrumented middleware costs one
/// pointer test per tier for untraced requests.
class [[nodiscard]] SpanScope {
 public:
  /// Root form: opens the root span of `trace`. Passing a null trace makes
  /// the whole scope a no-op (used when the collector is disabled).
  SpanScope(sim::Simulation& sim, Trace* trace, const char* name) : sim_(sim) {
    if constexpr (kEnabled) {
      if (trace != nullptr) {
        prev_ = sim_.currentSpan();
        span_ = trace->open(name, prev_, sim_.now());
        sim_.setCurrentSpan(span_);
      }
    }
  }

  /// Child form: opens a child of the current span, if any.
  SpanScope(sim::Simulation& sim, const char* name) : sim_(sim) {
    if constexpr (kEnabled) {
      prev_ = sim_.currentSpan();
      if (prev_ != nullptr) {
        span_ = prev_->trace->open(name, prev_, sim_.now());
        sim_.setCurrentSpan(span_);
      }
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    if constexpr (kEnabled) {
      if (span_ != nullptr) {
        span_->end = sim_.now();
        sim_.setCurrentSpan(prev_);
      }
    }
  }

  Span* span() const noexcept { return span_; }

 private:
  sim::Simulation& sim_;
  Span* span_ = nullptr;
  Span* prev_ = nullptr;
};

}  // namespace mwsim::trace
