#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "sim/time.hpp"

namespace mwsim::trace {

/// Compile-time kill switch. Building with -DMWSIM_TRACING=OFF (which
/// defines MWSIM_TRACE_OFF) compiles every instrumentation hook in the
/// simulation kernel down to nothing; CI uses that build as the baseline
/// for the tracing-disabled overhead check. With tracing compiled in but
/// not enabled for a run, every hook reduces to copying a null pointer.
#ifdef MWSIM_TRACE_OFF
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Where one nanosecond of a request's life went. Every simulated
/// suspension attributes its full elapsed time to exactly one category of
/// exactly one span, so the categories of a span tree sum to the root
/// span's end-to-end duration with no gaps and no double counting.
enum class Category : std::uint8_t {
  CpuService,   // CPU demand actually served (the work the tier asked for)
  CpuQueue,     // extra time on a CPU due to processor sharing, plus
                // waiting for a bounded worker pool slot
  LockWait,     // blocked on a lock (table locks, Java monitors, LOCK_open)
  NetTransfer,  // NIC queueing + serialization + switch propagation
  Other,        // modeled fixed delays (client turnaround and the like)
};

inline constexpr std::size_t kCategoryCount = 5;

inline const char* categoryName(Category c) {
  switch (c) {
    case Category::CpuService: return "cpu-service";
    case Category::CpuQueue: return "cpu-queue";
    case Category::LockWait: return "lock-wait";
    case Category::NetTransfer: return "net-transfer";
    case Category::Other: return "other";
  }
  return "?";
}

class Trace;

/// One node of a per-request span tree: a tier or sub-operation ("web",
/// "servlet", "db", ...) with its lifetime in virtual time and its
/// *exclusive* time split by category. Exclusive means time the request
/// spent here while no child span was open; a parent never re-counts a
/// child's time, so summing `excl` over a whole tree gives the root's
/// end-to-end latency exactly.
struct Span {
  const char* name = "";  // static string; spans never own their names
  Trace* trace = nullptr;
  Span* parent = nullptr;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::array<sim::Duration, kCategoryCount> excl{};

  /// Attribution hook used by the simulation primitives. Hot path when
  /// tracing is on: a single add into a preallocated slot, no allocation,
  /// no virtual time observed beyond what the caller already knows.
  void add(Category c, sim::Duration d) noexcept {
    excl[static_cast<std::size_t>(c)] += d;
  }

  sim::Duration inclusiveNs() const noexcept { return end - start; }
  sim::Duration exclusiveTotalNs() const noexcept {
    sim::Duration t = 0;
    for (sim::Duration d : excl) t += d;
    return t;
  }
};

/// The span tree of one client interaction. Spans live in a deque so that
/// raw Span pointers (held by suspended awaiters inside the simulation
/// primitives and by child spans) stay valid as spans are appended, and
/// survive moving the Trace into the collector.
class Trace {
 public:
  Trace(std::string interaction, int clientId)
      : interaction_(std::move(interaction)), clientId_(clientId) {}
  Trace(Trace&&) = default;
  Trace& operator=(Trace&&) = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Appends a span. Runs inside middleware coroutines (never inside the
  /// scheduler's event dispatch), so allocation here is acceptable.
  Span* open(const char* name, Span* parent, sim::SimTime now) {
    Span& s = spans_.emplace_back();
    s.name = name;
    s.trace = this;
    s.parent = parent;
    s.start = now;
    return &s;
  }

  const std::deque<Span>& spans() const noexcept { return spans_; }
  const Span* root() const noexcept { return spans_.empty() ? nullptr : &spans_.front(); }
  const std::string& interaction() const noexcept { return interaction_; }
  int clientId() const noexcept { return clientId_; }

 private:
  std::deque<Span> spans_;
  std::string interaction_;
  int clientId_ = 0;
};

}  // namespace mwsim::trace
