#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"
#include "trace/span.hpp"

namespace mwsim::trace {

/// Run-level tracing knobs, carried in ExperimentParams. Tracing changes
/// nothing about the simulated system: all observations are of virtual time
/// already decided by the scheduler.
struct Options {
  bool enabled = false;
  /// How many complete span trees to keep verbatim for the Chrome-trace
  /// exporter (the aggregates below always cover every measured trace).
  std::size_t maxRetainedTraces = 2000;
};

/// A span flattened out of its Trace for retention/export. `parent` is an
/// index into the owning RetainedTrace's span vector, -1 for the root.
struct RetainedSpan {
  std::string name;
  int parent = -1;
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::array<sim::Duration, kCategoryCount> excl{};
};

struct RetainedTrace {
  std::string interaction;
  int clientId = 0;
  std::vector<RetainedSpan> spans;
};

/// Aggregate over every span of one tier ("web", "db", ...).
struct TierStats {
  std::string name;
  std::uint64_t spans = 0;
  std::array<sim::Duration, kCategoryCount> exclNs{};
  stats::Histogram inclusiveSec;  // per-span inclusive time, in seconds
};

/// Aggregate over every traced interaction of one type ("Home", "BuyNow"...).
struct InteractionStats {
  std::string name;
  std::uint64_t count = 0;
  std::array<sim::Duration, kCategoryCount> exclNs{};  // summed over the tree
  stats::Histogram endToEndSec;
};

struct Report {
  std::uint64_t traces = 0;
  std::array<sim::Duration, kCategoryCount> exclNs{};
  stats::Histogram endToEndSec;
  std::vector<TierStats> tiers;                // canonical tier order
  std::vector<InteractionStats> interactions;  // sorted by name
  std::vector<RetainedTrace> retained;
};

/// Receives completed span trees from the client farm (measurement phase
/// only) and folds them into per-tier and per-interaction aggregates.
/// One Collector belongs to one Simulation, so aggregation order — and
/// therefore every float sum and histogram — is deterministic.
class Collector {
 public:
  explicit Collector(Options options) : options_(options) {}
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// False when tracing is compiled out (-DMWSIM_TRACING=OFF): an OFF build
  /// can never collect, so callers skip building reports entirely.
  bool enabled() const noexcept { return kEnabled && options_.enabled; }
  /// Mirrors WorkloadStats::setMeasuring: traces completed outside the
  /// measurement window are dropped, so aggregates match reported stats.
  void setMeasuring(bool on) noexcept { measuring_ = on; }
  bool measuring() const noexcept { return measuring_; }

  void add(Trace&& trace);

  Report report() const { return report_; }

 private:
  int tierIndex(const char* name);
  int interactionIndex(const std::string& name);

  Options options_;
  bool measuring_ = false;
  Report report_;
};

/// Serializes retained traces as Chrome-trace/Perfetto JSON ("X" complete
/// events, microsecond timestamps; tid = simulated client id).
/// `extraEvents` is an optional comma-joined fragment of additional events
/// appended to the traceEvents array — the metrics layer injects its
/// counter ("C") tracks through it (see obs::counterTrackEvents).
std::string chromeTraceJson(const Report& report, const std::string& extraEvents = {});

}  // namespace mwsim::trace
