#include "trace/collector.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

namespace mwsim::trace {

namespace {

/// Tiers are reported in stack order regardless of which configuration (and
/// therefore which subset of tiers) a run exercises.
constexpr const char* kCanonicalTiers[] = {
    "interaction", "web", "php", "servlet", "ejb", "db", "dbserver",
};

double toSecondsD(sim::Duration ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

int Collector::tierIndex(const char* name) {
  for (std::size_t i = 0; i < report_.tiers.size(); ++i) {
    if (report_.tiers[i].name == name) return static_cast<int>(i);
  }
  report_.tiers.push_back(TierStats{});
  report_.tiers.back().name = name;
  return static_cast<int>(report_.tiers.size()) - 1;
}

int Collector::interactionIndex(const std::string& name) {
  auto it = std::lower_bound(
      report_.interactions.begin(), report_.interactions.end(), name,
      [](const InteractionStats& s, const std::string& n) { return s.name < n; });
  if (it != report_.interactions.end() && it->name == name) {
    return static_cast<int>(it - report_.interactions.begin());
  }
  it = report_.interactions.insert(it, InteractionStats{});
  it->name = name;
  return static_cast<int>(it - report_.interactions.begin());
}

void Collector::add(Trace&& trace) {
  if (!measuring_) return;
  const Span* root = trace.root();
  if (root == nullptr) return;

  if (report_.tiers.empty()) {
    for (const char* t : kCanonicalTiers) tierIndex(t);
  }

  std::array<sim::Duration, kCategoryCount> treeExcl{};
  for (const Span& s : trace.spans()) {
    TierStats& tier = report_.tiers[static_cast<std::size_t>(tierIndex(s.name))];
    ++tier.spans;
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      tier.exclNs[c] += s.excl[c];
      treeExcl[c] += s.excl[c];
    }
    tier.inclusiveSec.record(toSecondsD(s.inclusiveNs()));
  }

  ++report_.traces;
  for (std::size_t c = 0; c < kCategoryCount; ++c) report_.exclNs[c] += treeExcl[c];
  report_.endToEndSec.record(toSecondsD(root->inclusiveNs()));

  InteractionStats& inter =
      report_.interactions[static_cast<std::size_t>(interactionIndex(trace.interaction()))];
  ++inter.count;
  for (std::size_t c = 0; c < kCategoryCount; ++c) inter.exclNs[c] += treeExcl[c];
  inter.endToEndSec.record(toSecondsD(root->inclusiveNs()));

  if (report_.retained.size() < options_.maxRetainedTraces) {
    RetainedTrace kept;
    kept.interaction = trace.interaction();
    kept.clientId = trace.clientId();
    std::unordered_map<const Span*, int> index;
    index.reserve(trace.spans().size());
    int i = 0;
    for (const Span& s : trace.spans()) index.emplace(&s, i++);
    kept.spans.reserve(trace.spans().size());
    for (const Span& s : trace.spans()) {
      RetainedSpan out;
      out.name = s.name;
      out.parent = s.parent == nullptr ? -1 : index.at(s.parent);
      out.start = s.start;
      out.end = s.end;
      out.excl = s.excl;
      kept.spans.push_back(std::move(out));
    }
    report_.retained.push_back(std::move(kept));
  }
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendMicros(std::string& out, sim::Duration ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string chromeTraceJson(const Report& report, const std::string& extraEvents) {
  std::string out;
  out.reserve(256 + report.retained.size() * 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"mwsim\"}}";
  for (const RetainedTrace& t : report.retained) {
    for (const RetainedSpan& s : t.spans) {
      out += ",\n{\"name\":\"";
      appendEscaped(out, s.name);
      out += "\",\"cat\":\"";
      appendEscaped(out, t.interaction);
      out += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
      out += std::to_string(t.clientId);
      out += ",\"ts\":";
      appendMicros(out, s.start);
      out += ",\"dur\":";
      appendMicros(out, s.end - s.start);
      out += ",\"args\":{\"interaction\":\"";
      appendEscaped(out, t.interaction);
      out += "\"";
      for (std::size_t c = 0; c < kCategoryCount; ++c) {
        if (s.excl[c] == 0) continue;
        out += ",\"";
        out += categoryName(static_cast<Category>(c));
        out += "_us\":";
        appendMicros(out, s.excl[c]);
      }
      out += "}}";
    }
  }
  if (!extraEvents.empty()) {
    out += ",\n";
    out += extraEvents;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mwsim::trace
